// Cross-worker synchronization primitives for the concurrent search backends
// (portfolio racing and parallel LNS, solver/portfolio.{h,cc}).
//
// Both primitives are cooperative: single-threaded backends never touch them
// (Model::Options carries null pointers by default), so sequential solves pay
// nothing and stay bit-for-bit deterministic.
#ifndef COLOGNE_SOLVER_SYNC_H_
#define COLOGNE_SOLVER_SYNC_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace cologne::solver {

/// \brief Cooperative cancellation flag checked from search inner loops.
///
/// Tokens chain: a worker's token is cancelled when either it or any ancestor
/// is, so a caller-supplied token keeps working when a backend wraps it in a
/// per-race token of its own.
class CancelToken {
 public:
  explicit CancelToken(const CancelToken* parent = nullptr)
      : parent_(parent) {}
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed) ||
           (parent_ != nullptr && parent_->cancelled());
  }

 private:
  std::atomic<bool> cancelled_{false};
  const CancelToken* parent_;
};

/// \brief Mutex-guarded best-solution store shared by concurrent search
/// workers.
///
/// Workers publish every local improvement through Offer(); the store keeps
/// the globally best assignment, stamps who found it and when, and exposes a
/// lock-free objective bound (`BestObjective`) that branch-and-bound pruning
/// reads on the hot path without taking the mutex.
class IncumbentStore {
 public:
  /// `minimize` fixes the comparison direction for the whole race;
  /// `num_workers` sizes the per-worker publication marks.
  explicit IncumbentStore(bool minimize, int num_workers = 1)
      : minimize_(minimize),
        marks_(static_cast<size_t>(num_workers > 0 ? num_workers : 1)),
        start_(std::chrono::steady_clock::now()) {}
  IncumbentStore(const IncumbentStore&) = delete;
  IncumbentStore& operator=(const IncumbentStore&) = delete;

  /// Per-worker publication accounting (read after the race via `mark`).
  struct WorkerMark {
    uint64_t improvements = 0;   ///< Offers that became the global best.
    double last_improve_ms = 0;  ///< Store-relative stamp of the last one.
  };

  /// Publish `values` with objective `objective` found by `worker`. Keeps it
  /// only when it strictly improves the current best (or is the first);
  /// returns true in that case.
  bool Offer(int64_t objective, const std::vector<int64_t>& values,
             int worker) {
    std::lock_guard<std::mutex> lock(mu_);
    if (found_ && !Better(objective, objective_)) return false;
    found_ = true;
    objective_ = objective;
    values_ = values;
    winner_ = worker;
    version_.fetch_add(1, std::memory_order_release);
    // Bound before flag (release/acquire pair with BestObjective): a reader
    // that sees the flag must see a valid bound, never the initial zero.
    bound_.store(objective, std::memory_order_relaxed);
    has_bound_.store(true, std::memory_order_release);
    if (static_cast<size_t>(worker) < marks_.size()) {
      WorkerMark& m = marks_[static_cast<size_t>(worker)];
      ++m.improvements;
      m.last_improve_ms = elapsed_ms();
    }
    return true;
  }

  /// Lock-free read of the best published objective; false when nothing has
  /// been published yet. Safe to call from search inner loops. May return a
  /// slightly stale (older, still valid) bound — bounds only improve.
  bool BestObjective(int64_t* out) const {
    if (!has_bound_.load(std::memory_order_acquire)) return false;
    *out = bound_.load(std::memory_order_relaxed);
    return true;
  }

  /// Monotone publication counter; lets pollers skip the mutex when nothing
  /// changed since the version they last saw.
  uint64_t version() const { return version_.load(std::memory_order_acquire); }

  /// Copy out the current best when it exists and strictly improves on the
  /// caller's incumbent (`have_local`/`local_objective`). `*seen_version` is
  /// refreshed either way so unchanged stores are skipped cheaply next time.
  bool AdoptIfBetter(bool have_local, int64_t local_objective,
                     uint64_t* seen_version, int64_t* objective,
                     std::vector<int64_t>* values) const {
    uint64_t v = version();
    if (v == *seen_version) return false;
    std::lock_guard<std::mutex> lock(mu_);
    *seen_version = version_.load(std::memory_order_relaxed);
    if (!found_) return false;
    if (have_local && !Better(objective_, local_objective)) return false;
    *objective = objective_;
    *values = values_;
    return true;
  }

  /// Copy out the final best (race end). False when no worker published.
  bool Snapshot(int64_t* objective, std::vector<int64_t>* values,
                int* winner = nullptr) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (!found_) return false;
    *objective = objective_;
    *values = values_;
    if (winner != nullptr) *winner = winner_;
    return true;
  }

  WorkerMark mark(int worker) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (static_cast<size_t>(worker) >= marks_.size()) return {};
    return marks_[static_cast<size_t>(worker)];
  }

  /// Milliseconds since the store was created (the race clock all worker
  /// publication stamps are relative to).
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

  bool minimize() const { return minimize_; }

 private:
  bool Better(int64_t a, int64_t b) const {
    return minimize_ ? a < b : a > b;
  }

  const bool minimize_;
  mutable std::mutex mu_;
  bool found_ = false;
  int64_t objective_ = 0;
  std::vector<int64_t> values_;
  int winner_ = -1;
  std::vector<WorkerMark> marks_;
  std::atomic<uint64_t> version_{0};
  // Denormalized copy of `objective_` for lock-free pruning reads.
  std::atomic<bool> has_bound_{false};
  std::atomic<int64_t> bound_{0};
  const std::chrono::steady_clock::time_point start_;
};

/// \brief A bounded B&B subproblem: a decision-prefix assignment plus the
/// objective bound that was in effect when the frontier node was generated.
///
/// Replaying `assignment` on a propagated root store (assign + propagate)
/// reconstructs the frontier node; `bound` lets the stealing worker start
/// from the master's pruning bound even before it adopts the shared
/// incumbent.
struct Subproblem {
  /// (variable id, value) pairs, in the master's branching order.
  std::vector<std::pair<int32_t, int64_t>> assignment;
  bool have_bound = false;
  int64_t bound = 0;
};

/// \brief Mutex-guarded FIFO of frontier subproblems for subproblem-parallel
/// branch-and-bound (the SOLVER_SUBPROBLEMS knob).
///
/// The master thread expands the root into bounded subproblems and closes the
/// queue before workers start, so workers only ever steal — no producer races
/// during search. FIFO order keeps stealing close to the master's
/// left-to-right frontier order, which matters for reproducible *coverage*
/// accounting (which subproblems ran where is still scheduling-dependent).
class SubproblemQueue {
 public:
  SubproblemQueue() = default;
  SubproblemQueue(const SubproblemQueue&) = delete;
  SubproblemQueue& operator=(const SubproblemQueue&) = delete;

  void Push(Subproblem sp) {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(sp));
    ++pushed_;
  }

  /// Pop the oldest subproblem into `*out`; false when the queue is drained.
  bool Steal(Subproblem* out) {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    *out = std::move(queue_.front());
    queue_.pop_front();
    ++steals_;
    return true;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }
  /// Total subproblems ever enqueued (SolveStats::subproblems).
  uint64_t pushed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pushed_;
  }
  /// Total successful steals (SolveStats::steals).
  uint64_t steals() const {
    std::lock_guard<std::mutex> lock(mu_);
    return steals_;
  }

 private:
  mutable std::mutex mu_;
  std::deque<Subproblem> queue_;
  uint64_t pushed_ = 0;
  uint64_t steals_ = 0;
};

}  // namespace cologne::solver

#endif  // COLOGNE_SOLVER_SYNC_H_

// Core solver handle types: variables, relations, and linear expressions.
#ifndef COLOGNE_SOLVER_TYPES_H_
#define COLOGNE_SOLVER_TYPES_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cologne::solver {

/// Handle to an integer decision variable owned by a Model.
struct IntVar {
  int32_t id = -1;
  bool valid() const { return id >= 0; }
  bool operator==(const IntVar&) const = default;
};

/// Comparison relations supported by constraints.
enum class Rel : uint8_t { kEq, kNe, kLe, kLt, kGe, kGt };

/// Human-readable relation symbol ("==", "<=", ...).
const char* RelName(Rel rel);
/// The logical negation of a relation (== -> !=, <= -> >, ...).
Rel Negate(Rel rel);
/// Swap sides: (a rel b) == (b Flip(rel) a).
Rel Flip(Rel rel);
/// Evaluate `lhs rel rhs` on concrete integers.
bool EvalRel(int64_t lhs, Rel rel, int64_t rhs);

/// \brief An affine expression: constant + sum(coef_i * var_i).
///
/// LinExpr is the lingua franca between the Colog runtime bridge and the
/// solver: solver-attribute expressions compile to LinExpr where possible,
/// and to auxiliary variables + propagators otherwise.
struct LinExpr {
  int64_t constant = 0;
  std::vector<std::pair<int64_t, IntVar>> terms;  // (coefficient, variable)

  LinExpr() = default;
  /// Constant expression.
  explicit LinExpr(int64_t c) : constant(c) {}
  /// 1 * v.
  explicit LinExpr(IntVar v) { terms.push_back({1, v}); }
  static LinExpr Term(int64_t coef, IntVar v) {
    LinExpr e;
    if (coef != 0) e.terms.push_back({coef, v});
    return e;
  }

  bool IsConstant() const { return terms.empty(); }

  LinExpr& operator+=(const LinExpr& o);
  LinExpr& operator-=(const LinExpr& o);
  LinExpr& MulBy(int64_t k);

  friend LinExpr operator+(LinExpr a, const LinExpr& b) { return a += b; }
  friend LinExpr operator-(LinExpr a, const LinExpr& b) { return a -= b; }

  /// Merge duplicate variables and drop zero coefficients.
  void Canonicalize();

  std::string ToString() const;
};

/// Pluggable search strategies (Model::Options::backend).
enum class Backend : uint8_t {
  kBranchAndBound,  ///< Trailed depth-first branch-and-bound (complete).
  kLns,             ///< Large Neighborhood Search (anytime, incomplete).
  kPortfolio,       ///< Race heterogeneous configurations on one deadline.
  kParallelLns,     ///< N seeded LNS walks sharing one incumbent.
  kLocalSearch,     ///< Shift/swap move walk with SA + tabu acceptance.
};

/// Human-readable backend name ("bnb", "lns", "portfolio", "parallel_lns",
/// "local_search") — also the spelling accepted by the Colog SOLVER_BACKEND
/// knob.
const char* BackendName(Backend b);
/// Parse a backend name; false when `name` is not a known backend.
bool ParseBackend(const std::string& name, Backend* out);

/// Search outcome classification.
enum class SolveStatus : uint8_t {
  kOptimal,     ///< Search space exhausted; best solution is optimal.
  kFeasible,    ///< At least one solution found but search was cut short
                ///< (time limit), so optimality is not proven.
  kInfeasible,  ///< Proven: no solution satisfies the constraints.
  kUnknown,     ///< No solution found before the time limit.
};

/// Human-readable status name.
const char* SolveStatusName(SolveStatus s);

/// Per-worker accounting for the concurrent backends (portfolio racing and
/// parallel LNS). Sequential backends leave SolveStats::per_worker empty.
struct WorkerSolveStats {
  std::string config;        ///< Worker configuration, e.g. "lns(seed=7)".
  uint64_t nodes = 0;        ///< Choice points this worker explored.
  uint64_t iterations = 0;   ///< Improvement iterations this worker ran.
  uint64_t restarts = 0;     ///< Restarts this worker performed.
  uint64_t improvements = 0; ///< Shared-incumbent publications that won.
  double last_improve_ms = 0;///< Race-relative stamp of the last publication.
  bool winner = false;       ///< Produced the final incumbent.
};

/// Search statistics reported by Model::Solve.
struct SolveStats {
  uint64_t nodes = 0;        ///< Choice points explored.
  uint64_t failures = 0;     ///< Dead ends encountered.
  uint64_t solutions = 0;    ///< Feasible solutions found (B&B improvements).
  uint64_t propagations = 0; ///< Propagator executions.
  uint64_t wakes_filtered = 0;        ///< Wakeups suppressed because the
                                      ///< domain event could not affect the
                                      ///< subscriber (event-typed engine; 0
                                      ///< in the naive reference mode).
  uint64_t props_skipped_entailed = 0;///< Wakeups suppressed because the
                                      ///< propagator had reported itself
                                      ///< entailed on this subtree.
  uint64_t iterations = 0;   ///< Backend improvement iterations (LNS
                             ///< neighborhoods repaired / B&B improvement
                             ///< dives after the tree-search phase).
  uint64_t restarts = 0;     ///< Search restarts (Luby restarts for B&B,
                             ///< diversification resets for LNS).
  uint64_t lns_accepted = 0; ///< LNS neighborhood repairs that improved the
                             ///< incumbent (iterations - lns_accepted were
                             ///< rejected).
  uint64_t ls_moves = 0;     ///< Local-search shift/swap moves evaluated
                             ///< (local_search backend only; 0 elsewhere).
  uint64_t ls_accepted = 0;  ///< Moves accepted by the simulated-annealing
                             ///< criterion (improving or lucky uphill).
  uint64_t ls_tabu_hits = 0; ///< Moves rejected because their attribute was
                             ///< tabu-active and aspiration did not fire.
  /// Propagator executions by propagator kind ("linear", "reified", ...);
  /// sums to `propagations`. Filled by sequential backends at the end of a
  /// solve (concurrent backends report only the aggregate counter).
  std::map<std::string, uint64_t> propagations_by_kind;
  uint64_t trail_saves = 0;  ///< Undo records pushed by the trailed store
                             ///< (touched-domain saves; the O(Δ) backtrack
                             ///< cost where the copy-based core paid
                             ///< O(num_vars) clones per node).
  uint64_t cache_hits = 0;   ///< Context-cache prunes: nodes skipped because
                             ///< a stored proof covered the bound in effect
                             ///< (0 with SOLVER_CACHE off).
  uint64_t cache_stores = 0; ///< Exhausted-subtree proofs recorded into the
                             ///< context cache.
  size_t cache_mem_bytes = 0;///< Context-cache table footprint (max across
                             ///< workers for the concurrent backends).
  uint64_t steals = 0;       ///< Subproblems stolen from the shared frontier
                             ///< queue (subproblem-parallel B&B only).
  uint64_t subproblems = 0;  ///< Frontier subproblems the master generated.
  double wall_ms = 0;        ///< Elapsed wall-clock milliseconds.
  size_t peak_memory_bytes = 0;  ///< Approximate peak search-state memory.
  /// Concurrent backends only: one entry per racing worker (counters above
  /// are the sums/maxima across workers).
  std::vector<WorkerSolveStats> per_worker;
};

/// Result of Model::Solve: status, assignment (by variable id), objective.
struct Solution {
  SolveStatus status = SolveStatus::kUnknown;
  std::vector<int64_t> values;  ///< values[var.id] = assigned value.
  int64_t objective = 0;        ///< Meaningful for minimize/maximize goals.
  Backend backend = Backend::kBranchAndBound;  ///< Strategy that produced it.
  SolveStats stats;

  bool has_solution() const {
    return status == SolveStatus::kOptimal || status == SolveStatus::kFeasible;
  }
  int64_t ValueOf(IntVar v) const { return values[static_cast<size_t>(v.id)]; }
};

}  // namespace cologne::solver

#endif  // COLOGNE_SOLVER_TYPES_H_

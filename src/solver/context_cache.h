// Transposition/context cache for the search core: DAOOPT-style full
// context-based caching (Otten & Dechter) ported onto the trailed store.
//
// A cache entry is a *proof* about a decision context — the set of fixed
// decision variables and their values at a node, regardless of how branching
// and propagation got there. A bounded entry proves "no solution whose
// decisions extend this context has an objective strictly better than
// `bound`"; an unconditional entry proves "no solution extends this context
// at all". SearchContext::Dive records an entry whenever it pops a fully
// explored subtree and consults the cache at every node after propagation:
// a matching entry whose proven region covers the bound now in effect prunes
// the subtree without descending. That is what lets Luby restarts, repeated
// LNS neighborhood trials, and cross-solve re-entries (the bridge persists
// one cache per Instance) skip ground a previous dive already exhausted.
//
// Soundness does not depend on auxiliary-variable domains: propagation only
// removes values that extend to no solution of the current subtree, so any
// solution whose decisions extend the context would also have survived the
// original descent. A false hit therefore requires two distinct contexts to
// collide on the full 64-bit signature (every probe verifies the stored
// key, not just the table index) — the standard transposition-table trade,
// at ~2^-64 per pair. The cache is opt-in (SOLVER_CACHE); with it off every
// search path is bit-identical to the cache-free solver, which keeps the
// determinism-gated goldens byte-stable.
//
// Not thread-safe: one cache serves exactly one search thread. The
// concurrent backends hand each worker a private cache seeded with the same
// model key instead of sharing this one.
#ifndef COLOGNE_SOLVER_CONTEXT_CACHE_H_
#define COLOGNE_SOLVER_CONTEXT_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cologne::solver {

/// \brief Bounded, direct-mapped cache of exhausted-subtree proofs keyed by
/// decision-context signature.
class ContextCache {
 public:
  /// Default table size: 64Ki entries ≈ 1.5 MiB once touched (the table is
  /// allocated lazily on first use, so an enabled-but-unused cache is free).
  static constexpr size_t kDefaultCapacity = size_t{1} << 16;

  /// `capacity` is rounded up to a power of two (minimum 64).
  explicit ContextCache(size_t capacity = kDefaultCapacity);

  /// Namespace of every subsequently stored/looked-up signature. The bridge
  /// folds the model fingerprints in here, so a fact delta that changes any
  /// group fingerprint retires every entry of the previous model without an
  /// explicit sweep (their mixed keys can no longer match).
  void set_model_key(uint64_t key) { model_key_ = key; }
  uint64_t model_key() const { return model_key_; }

  /// Drop every entry (keeps the model key and the allocated table).
  void Clear();

  /// True when a stored proof covers the caller's current bound region:
  /// an unconditional entry always does; a bounded entry covers a caller
  /// searching for objective strictly better than `bound` iff its proven
  /// region contains that region (minimize: bound <= entry bound). With
  /// `have_bound` false the caller wants *any* extension, which only an
  /// unconditional entry refutes.
  bool Lookup(uint64_t sig, bool minimize, bool have_bound,
              int64_t bound) const;

  /// Record a proof for `sig`: unconditional when `have_bound` is false.
  /// Re-storing an existing context keeps the stronger proof (unconditional
  /// beats bounded; among bounds, the one excluding more solutions wins).
  void Store(uint64_t sig, bool minimize, bool have_bound, int64_t bound);

  size_t entries() const { return entries_; }
  size_t capacity() const { return capacity_; }
  /// Resident table footprint (0 until the first Store/Lookup touches it).
  size_t MemoryBytes() const;

 private:
  struct Entry {
    uint64_t key = 0;    ///< Full mixed signature, verified on every probe.
    int64_t bound = 0;   ///< Proven "no solution better than" threshold.
    uint8_t flags = 0;   ///< Bit 0: occupied. Bit 1: unconditional.
  };
  static constexpr uint8_t kOccupied = 1;
  static constexpr uint8_t kUnconditional = 2;
  /// Probe window per key: index .. index+3 (wrapping).
  static constexpr size_t kProbes = 4;

  uint64_t MixedKey(uint64_t sig) const;
  void EnsureTable();

  size_t capacity_;
  size_t mask_;
  size_t entries_ = 0;
  uint64_t model_key_ = 0;
  /// Lazily allocated to `capacity_` on first use; mutable so a miss on a
  /// never-touched cache does not force the allocation either.
  mutable std::vector<Entry> table_;
};

}  // namespace cologne::solver

#endif  // COLOGNE_SOLVER_CONTEXT_CACHE_H_

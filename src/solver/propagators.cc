// Concrete propagator implementations.
//
// Each propagator declares, per watched variable, the event mask that can
// actually affect it (a bounds propagator never cares about interior holes;
// a disequality only cares about variables becoming fixed), and the linear
// family additionally keeps exact running sum-min/sum-max aggregates in
// trailed store aux slots, maintained by O(1) Advise deltas. The aggregates
// make the failure/entailment check O(1) per wake and replace the
// full-recompute first pass of the prune; the prune pass itself is
// term-for-term identical to the legacy code, so fixpoints — and search
// trees — are unchanged in either scheduling mode.
#include <algorithm>
#include <cmath>

#include "solver/propagator.h"

namespace cologne::solver {
namespace {

int64_t Clamp128(__int128 x) {
  if (x > kDomainLimit) return kDomainLimit;
  if (x < -kDomainLimit) return -kDomainLimit;
  return static_cast<int64_t>(x);
}

// Exact [sum-min, sum-max] of `e` over the store's current domains, written
// into aux slots [base, base+1].
void InitLinearAux(const LinExpr& e, DomainStore& store, int base) {
  __int128 lo = e.constant, hi = e.constant;
  for (const auto& [c, v] : e.terms) {
    const IntDomain& d = store.dom(v.id);
    if (c >= 0) {
      lo += static_cast<__int128>(c) * d.min();
      hi += static_cast<__int128>(c) * d.max();
    } else {
      lo += static_cast<__int128>(c) * d.max();
      hi += static_cast<__int128>(c) * d.min();
    }
  }
  store.SetAux(base, lo);
  store.SetAux(base + 1, hi);
}

// Exact maximum term width `|c| * (max - min)` of `e` over the store's
// current domains — the certificate LinearPassAtFixpoint compares against
// the pass slack. Stored in aux slot 2 and resynced after every executed
// prune, so between runs it is a sound upper bound (domains only narrow).
__int128 MaxTermWidth(const LinExpr& e, const DomainStore& store) {
  __int128 w = 0;
  for (const auto& [c, v] : e.terms) {
    const IntDomain& d = store.dom(v.id);
    const __int128 width = static_cast<__int128>(c < 0 ? -c : c) *
                           (static_cast<__int128>(d.max()) - d.min());
    if (width > w) w = width;
  }
  return w;
}

// Recompute the width certificate after a prune pass narrowed term domains.
// Piggybacks on PropCtx's aux access; always true so callers can chain it.
bool ResyncMaxTermWidth(PropCtx& ctx, const LinExpr& e) {
  __int128 w = 0;
  for (const auto& [c, v] : e.terms) {
    const IntDomain& d = ctx.dom(v);
    const __int128 width = static_cast<__int128>(c < 0 ? -c : c) *
                           (static_cast<__int128>(d.max()) - d.min());
    if (width > w) w = width;
  }
  ctx.SetAuxVal(2, w);
  return true;
}

// Wake mask for one term of `e rel 0`: which bound movements can tighten the
// relation's pruning or fail it. kLe/kLt only act when sum-min rises — via
// the min of a positive-coefficient term or the max of a negative one;
// kGe/kGt mirror; kEq needs both directions; kNe only reads fixed statuses.
uint8_t LinearTermMask(Rel rel, int64_t c) {
  switch (rel) {
    case Rel::kLe:
    case Rel::kLt:
      return c >= 0 ? kEventMin : kEventMax;
    case Rel::kGe:
    case Rel::kGt:
      return c >= 0 ? kEventMax : kEventMin;
    case Rel::kEq:
      return kEventMin | kEventMax;
    case Rel::kNe:
      return kEventFix;
  }
  return kEventAny;
}

// ---------------------------------------------------------------------------
// e rel 0
// ---------------------------------------------------------------------------
class LinearProp : public Propagator {
 public:
  LinearProp(LinExpr e, Rel rel) : e_(std::move(e)), rel_(rel) {
    e_.Canonicalize();
    for (const auto& [c, v] : e_.terms) Watch(v, LinearTermMask(rel_, c));
  }

  bool Propagate(PropCtx& ctx) override {
    if (!ctx.incremental()) return PruneLinear(ctx, e_, rel_);
    const ExprBounds b = ClampExprBounds(ctx.AuxVal(0), ctx.AuxVal(1));
    const Entail ent = EntailedRel(b, rel_);
    if (ent == Entail::kYes) {
      // Domains only shrink below this node, so the relation stays entailed
      // for the whole subtree: unplug until backtrack.
      ctx.SetEntailed();
      return true;
    }
    if (ent == Entail::kNo) return false;
    return PruneLinearIncremental(ctx, e_, rel_) &&
           ResyncMaxTermWidth(ctx, e_);
  }

  std::string DebugString() const override {
    return e_.ToString() + " " + RelName(rel_) + " 0";
  }

  const char* kind() const override { return "linear"; }

  // One-sided sums prune opposite bounds only (a <= prunes maxes off the
  // sum-of-mins, which those prunes leave untouched), and != removes at most
  // one value once everything else is fixed — a successful run is at its own
  // fixpoint. == is the exception: its min pass shifts the sum its max pass
  // read, so the engine re-runs it to closure.
  bool IdempotentAfterRun() const override { return rel_ != Rel::kEq; }

  // Slot 2 = width certificate: a wake whose slack covers every term width
  // provably cannot prune (or fail) — the advisor subsumes it. The engine
  // evaluates the proof inline from this descriptor.
  FixpointProof fixpoint_proof() const override {
    if (rel_ == Rel::kNe) return {};  // no aux slots, no certificate
    return {FixpointProof::Kind::kLinear, rel_, -1};
  }

  int NumAuxSlots() const override { return rel_ == Rel::kNe ? 0 : 3; }
  void InitAux(DomainStore& store, int aux_base) const override {
    InitLinearAux(e_, store, aux_base);
    store.SetAux(aux_base + 2, MaxTermWidth(e_, store));
  }
  int64_t AdviseCoefficient(uint32_t watch_pos) const override {
    return e_.terms[watch_pos].first;
  }

 private:
  LinExpr e_;
  Rel rel_;
};

// ---------------------------------------------------------------------------
// b <=> (e rel 0)
// ---------------------------------------------------------------------------
class ReifiedLinearProp : public Propagator {
 public:
  ReifiedLinearProp(IntVar b, LinExpr e, Rel rel)
      : b_(b), e_(std::move(e)), rel_(rel) {
    e_.Canonicalize();
    // b is 0/1: any change fixes it. The expression needs both bound
    // directions — either can decide entailment and flip b.
    Watch(b_, kEventFix);
    WatchExpr(e_, kEventMin | kEventMax);
  }

  bool Propagate(PropCtx& ctx) override {
    if (!ctx.incremental()) return PropagateRecompute(ctx);
    const ExprBounds bd = ClampExprBounds(ctx.AuxVal(0), ctx.AuxVal(1));
    // Three-valued status of the *positive* relation; entailment of the
    // negated relation is its dual (bounds-based: rel is No exactly when
    // Negate(rel) is Yes).
    const Entail ent = EntailedRel(bd, rel_);
    if (ctx.IsFixed(b_)) {
      if (ctx.ValueOf(b_) != 0) {
        if (ent == Entail::kYes) {
          // b already says "holds" and the relation is entailed: nothing can
          // ever change below this node — stop re-pruning a satisfied
          // relation on every wake.
          ctx.SetEntailed();
          return true;
        }
        if (ent == Entail::kNo) return false;
        return PruneLinearIncremental(ctx, e_, rel_) &&
               ResyncMaxTermWidth(ctx, e_);
      }
      if (ent == Entail::kNo) {  // negated relation entailed
        ctx.SetEntailed();
        return true;
      }
      if (ent == Entail::kYes) return false;
      return PruneLinearIncremental(ctx, e_, Negate(rel_)) &&
             ResyncMaxTermWidth(ctx, e_);
    }
    if (ent == Entail::kYes) {
      if (!ctx.Assign(b_, 1)) return false;
      ctx.SetEntailed();
      return true;
    }
    if (ent == Entail::kNo) {
      if (!ctx.Assign(b_, 0)) return false;
      ctx.SetEntailed();
      return true;
    }
    return true;
  }

  std::string DebugString() const override {
    return "x" + std::to_string(b_.id) + " <=> (" + e_.ToString() + " " +
           RelName(rel_) + " 0)";
  }

  const char* kind() const override { return "reified"; }

  // Idempotent unless one of the two enforceable relations (rel when b=1,
  // its negation when b=0) is the two-pass ==; kEq/kNe each have == on one
  // side of the negation.
  bool IdempotentAfterRun() const override {
    return rel_ != Rel::kEq && rel_ != Rel::kNe;
  }

  // While b is open the run only acts when the bounds decide the relation:
  // an undecided (kMaybe) wake is a provable no-op. Once b is fixed the
  // effective pass is plain linear pruning, certified by the width slot.
  // The engine evaluates both cases inline from this descriptor.
  FixpointProof fixpoint_proof() const override {
    return {FixpointProof::Kind::kReified, rel_, b_.id};
  }

  int NumAuxSlots() const override { return 3; }
  void InitAux(DomainStore& store, int aux_base) const override {
    InitLinearAux(e_, store, aux_base);
    store.SetAux(aux_base + 2, MaxTermWidth(e_, store));
  }
  int64_t AdviseCoefficient(uint32_t watch_pos) const override {
    // Watch 0 is b: the control variable carries no aggregate contribution.
    return watch_pos == 0 ? 0 : e_.terms[watch_pos - 1].first;
  }

 private:
  // Legacy full-recompute body (naive reference mode / no aux).
  bool PropagateRecompute(PropCtx& ctx) {
    if (ctx.IsFixed(b_)) {
      Rel eff = ctx.ValueOf(b_) != 0 ? rel_ : Negate(rel_);
      return PruneLinear(ctx, e_, eff);
    }
    Entail ent = EntailedRel(BoundsOf(ctx, e_), rel_);
    if (ent == Entail::kYes) return ctx.Assign(b_, 1);
    if (ent == Entail::kNo) return ctx.Assign(b_, 0);
    return true;
  }

  IntVar b_;
  LinExpr e_;
  Rel rel_;
};

// ---------------------------------------------------------------------------
// z == x * y  (bounds consistency; exact when x == y, i.e. squares)
// ---------------------------------------------------------------------------
class TimesProp : public Propagator {
 public:
  TimesProp(IntVar z, IntVar x, IntVar y) : z_(z), x_(x), y_(y) {
    // Pure bounds propagator: interior holes can't affect it.
    Watch(z_, kEventMin | kEventMax);
    Watch(x_, kEventMin | kEventMax);
    if (!(y_ == x_)) Watch(y_, kEventMin | kEventMax);
  }

  bool Propagate(PropCtx& ctx) override {
    if (x_ == y_) return PropagateSquare(ctx);
    // Forward: z bounds from corner products.
    int64_t xl = ctx.Min(x_), xh = ctx.Max(x_);
    int64_t yl = ctx.Min(y_), yh = ctx.Max(y_);
    __int128 c1 = static_cast<__int128>(xl) * yl;
    __int128 c2 = static_cast<__int128>(xl) * yh;
    __int128 c3 = static_cast<__int128>(xh) * yl;
    __int128 c4 = static_cast<__int128>(xh) * yh;
    __int128 zl = std::min(std::min(c1, c2), std::min(c3, c4));
    __int128 zh = std::max(std::max(c1, c2), std::max(c3, c4));
    if (!ctx.ClampMin(z_, Clamp128(zl))) return false;
    if (!ctx.ClampMax(z_, Clamp128(zh))) return false;
    // Backward: only when the divisor domain does not straddle zero.
    if (!PruneFactor(ctx, x_, y_)) return false;
    if (!PruneFactor(ctx, y_, x_)) return false;
    return true;
  }

  std::string DebugString() const override {
    return "x" + std::to_string(z_.id) + " == x" + std::to_string(x_.id) +
           " * x" + std::to_string(y_.id);
  }

  const char* kind() const override { return "times"; }

 private:
  // Prune `target` given z and the other factor `other`.
  bool PruneFactor(PropCtx& ctx, IntVar target, IntVar other) {
    int64_t ol = ctx.Min(other), oh = ctx.Max(other);
    if (ol <= 0 && oh >= 0) return true;  // divisor straddles 0: no pruning
    int64_t zl = ctx.Min(z_), zh = ctx.Max(z_);
    // target in [min, max] of z/other over corner quotients.
    double q1 = static_cast<double>(zl) / static_cast<double>(ol);
    double q2 = static_cast<double>(zl) / static_cast<double>(oh);
    double q3 = static_cast<double>(zh) / static_cast<double>(ol);
    double q4 = static_cast<double>(zh) / static_cast<double>(oh);
    double lo = std::floor(std::min(std::min(q1, q2), std::min(q3, q4)));
    double hi = std::ceil(std::max(std::max(q1, q2), std::max(q3, q4)));
    if (!ctx.ClampMin(target, static_cast<int64_t>(lo))) return false;
    if (!ctx.ClampMax(target, static_cast<int64_t>(hi))) return false;
    return true;
  }

  bool PropagateSquare(PropCtx& ctx) {
    int64_t xl = ctx.Min(x_), xh = ctx.Max(x_);
    // z >= 0 and z <= max square.
    __int128 sqmax =
        std::max(static_cast<__int128>(xl) * xl, static_cast<__int128>(xh) * xh);
    __int128 sqmin = 0;
    if (xl > 0) sqmin = static_cast<__int128>(xl) * xl;
    if (xh < 0) sqmin = static_cast<__int128>(xh) * xh;
    if (!ctx.ClampMin(z_, Clamp128(sqmin))) return false;
    if (!ctx.ClampMax(z_, Clamp128(sqmax))) return false;
    // |x| <= floor(sqrt(z_max)).
    int64_t zmax = ctx.Max(z_);
    int64_t root = static_cast<int64_t>(
        std::floor(std::sqrt(static_cast<double>(std::max<int64_t>(zmax, 0)))));
    while (static_cast<__int128>(root) * root > zmax) --root;
    while (static_cast<__int128>(root + 1) * (root + 1) <= zmax) ++root;
    if (!ctx.ClampMin(x_, -root)) return false;
    if (!ctx.ClampMax(x_, root)) return false;
    return true;
  }

  IntVar z_, x_, y_;
};

// ---------------------------------------------------------------------------
// z == |x|
// ---------------------------------------------------------------------------
class AbsProp : public Propagator {
 public:
  AbsProp(IntVar z, IntVar x) : z_(z), x_(x) {
    Watch(z_, kEventMin | kEventMax);
    Watch(x_, kEventMin | kEventMax);
  }

  bool Propagate(PropCtx& ctx) override {
    int64_t xl = ctx.Min(x_), xh = ctx.Max(x_);
    int64_t zmin = 0;
    if (xl > 0) zmin = xl;
    if (xh < 0) zmin = -xh;
    int64_t zmax = std::max(std::abs(xl), std::abs(xh));
    if (!ctx.ClampMin(z_, zmin)) return false;
    if (!ctx.ClampMax(z_, zmax)) return false;
    // x in [-z_max, z_max]; sharpen when the sign of x is known.
    int64_t zM = ctx.Max(z_), zm = ctx.Min(z_);
    if (!ctx.ClampMin(x_, -zM)) return false;
    if (!ctx.ClampMax(x_, zM)) return false;
    if (ctx.Min(x_) >= 0 && !ctx.ClampMin(x_, zm)) return false;
    if (ctx.Max(x_) <= 0 && !ctx.ClampMax(x_, -zm)) return false;
    return true;
  }

  std::string DebugString() const override {
    return "x" + std::to_string(z_.id) + " == |x" + std::to_string(x_.id) + "|";
  }

  const char* kind() const override { return "abs"; }

 private:
  IntVar z_, x_;
};

// ---------------------------------------------------------------------------
// b <=> OR(b1..bn) over 0/1 variables
// ---------------------------------------------------------------------------
class OrProp : public Propagator {
 public:
  OrProp(IntVar b, std::vector<IntVar> bs) : b_(b), bs_(std::move(bs)) {
    // 0/1 variables: every change is a fixing; the propagator only reads
    // fixed statuses.
    Watch(b_, kEventFix);
    for (IntVar v : bs_) Watch(v, kEventFix);
  }

  bool Propagate(PropCtx& ctx) override {
    int n_true = 0, n_false = 0;
    IntVar last_unfixed;
    for (IntVar v : bs_) {
      if (ctx.IsFixed(v)) {
        if (ctx.ValueOf(v) != 0) {
          ++n_true;
        } else {
          ++n_false;
        }
      } else {
        last_unfixed = v;
      }
    }
    size_t n = bs_.size();
    if (n_true > 0) {
      if (!ctx.Assign(b_, 1)) return false;
    } else if (static_cast<size_t>(n_false) == n) {
      if (!ctx.Assign(b_, 0)) return false;
    }
    if (ctx.IsFixed(b_)) {
      if (ctx.ValueOf(b_) == 0) {
        for (IntVar v : bs_) {
          if (!ctx.Assign(v, 0)) return false;
        }
      } else if (n_true == 0 && static_cast<size_t>(n_false) == n - 1 &&
                 last_unfixed.valid()) {
        // b is true and only one disjunct can still be true.
        if (!ctx.Assign(last_unfixed, 1)) return false;
      }
    }
    return true;
  }

  std::string DebugString() const override {
    return "x" + std::to_string(b_.id) + " <=> OR(" +
           std::to_string(bs_.size()) + " vars)";
  }

  const char* kind() const override { return "or"; }

 private:
  IntVar b_;
  std::vector<IntVar> bs_;
};

// ---------------------------------------------------------------------------
// z == max(x, c)
// ---------------------------------------------------------------------------
class MaxConstProp : public Propagator {
 public:
  MaxConstProp(IntVar z, IntVar x, int64_t c) : z_(z), x_(x), c_(c) {
    Watch(z_, kEventMin | kEventMax);
    Watch(x_, kEventMin | kEventMax);
  }

  bool Propagate(PropCtx& ctx) override {
    // z bounds.
    if (!ctx.ClampMin(z_, std::max(ctx.Min(x_), c_))) return false;
    if (!ctx.ClampMax(z_, std::max(ctx.Max(x_), c_))) return false;
    // x bounds: x <= z_max; if z_min > c then x == z (so x >= z_min).
    if (!ctx.ClampMax(x_, ctx.Max(z_))) return false;
    if (ctx.Min(z_) > c_ && !ctx.ClampMin(x_, ctx.Min(z_))) return false;
    return true;
  }

  std::string DebugString() const override {
    return "x" + std::to_string(z_.id) + " == max(x" + std::to_string(x_.id) +
           ", " + std::to_string(c_) + ")";
  }

  const char* kind() const override { return "max_const"; }

 private:
  IntVar z_, x_;
  int64_t c_;
};

}  // namespace

std::unique_ptr<Propagator> MakeLinear(LinExpr e, Rel rel) {
  return std::make_unique<LinearProp>(std::move(e), rel);
}
std::unique_ptr<Propagator> MakeReifiedLinear(IntVar b, LinExpr e, Rel rel) {
  return std::make_unique<ReifiedLinearProp>(b, std::move(e), rel);
}
std::unique_ptr<Propagator> MakeTimes(IntVar z, IntVar x, IntVar y) {
  return std::make_unique<TimesProp>(z, x, y);
}
std::unique_ptr<Propagator> MakeAbs(IntVar z, IntVar x) {
  return std::make_unique<AbsProp>(z, x);
}
std::unique_ptr<Propagator> MakeOr(IntVar b, std::vector<IntVar> bs) {
  return std::make_unique<OrProp>(b, std::move(bs));
}
std::unique_ptr<Propagator> MakeMaxConst(IntVar z, IntVar x, int64_t c) {
  return std::make_unique<MaxConstProp>(z, x, c);
}

}  // namespace cologne::solver

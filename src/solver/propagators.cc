// Concrete propagator implementations.
#include <algorithm>
#include <cmath>

#include "solver/propagator.h"

namespace cologne::solver {
namespace {

int64_t Clamp128(__int128 x) {
  if (x > kDomainLimit) return kDomainLimit;
  if (x < -kDomainLimit) return -kDomainLimit;
  return static_cast<int64_t>(x);
}

// ---------------------------------------------------------------------------
// e rel 0
// ---------------------------------------------------------------------------
class LinearProp : public Propagator {
 public:
  LinearProp(LinExpr e, Rel rel) : e_(std::move(e)), rel_(rel) {
    e_.Canonicalize();
    WatchExpr(e_);
  }

  bool Propagate(PropCtx& ctx) override { return PruneLinear(ctx, e_, rel_); }

  std::string DebugString() const override {
    return e_.ToString() + " " + RelName(rel_) + " 0";
  }

  const char* kind() const override { return "linear"; }

 private:
  LinExpr e_;
  Rel rel_;
};

// ---------------------------------------------------------------------------
// b <=> (e rel 0)
// ---------------------------------------------------------------------------
class ReifiedLinearProp : public Propagator {
 public:
  ReifiedLinearProp(IntVar b, LinExpr e, Rel rel)
      : b_(b), e_(std::move(e)), rel_(rel) {
    e_.Canonicalize();
    Watch(b_);
    WatchExpr(e_);
  }

  bool Propagate(PropCtx& ctx) override {
    if (ctx.IsFixed(b_)) {
      Rel eff = ctx.ValueOf(b_) != 0 ? rel_ : Negate(rel_);
      return PruneLinear(ctx, e_, eff);
    }
    Entail ent = EntailedRel(BoundsOf(ctx, e_), rel_);
    if (ent == Entail::kYes) return ctx.Assign(b_, 1);
    if (ent == Entail::kNo) return ctx.Assign(b_, 0);
    return true;
  }

  std::string DebugString() const override {
    return "x" + std::to_string(b_.id) + " <=> (" + e_.ToString() + " " +
           RelName(rel_) + " 0)";
  }

  const char* kind() const override { return "reified"; }

 private:
  IntVar b_;
  LinExpr e_;
  Rel rel_;
};

// ---------------------------------------------------------------------------
// z == x * y  (bounds consistency; exact when x == y, i.e. squares)
// ---------------------------------------------------------------------------
class TimesProp : public Propagator {
 public:
  TimesProp(IntVar z, IntVar x, IntVar y) : z_(z), x_(x), y_(y) {
    Watch(z_);
    Watch(x_);
    if (!(y_ == x_)) Watch(y_);
  }

  bool Propagate(PropCtx& ctx) override {
    if (x_ == y_) return PropagateSquare(ctx);
    // Forward: z bounds from corner products.
    int64_t xl = ctx.Min(x_), xh = ctx.Max(x_);
    int64_t yl = ctx.Min(y_), yh = ctx.Max(y_);
    __int128 c1 = static_cast<__int128>(xl) * yl;
    __int128 c2 = static_cast<__int128>(xl) * yh;
    __int128 c3 = static_cast<__int128>(xh) * yl;
    __int128 c4 = static_cast<__int128>(xh) * yh;
    __int128 zl = std::min(std::min(c1, c2), std::min(c3, c4));
    __int128 zh = std::max(std::max(c1, c2), std::max(c3, c4));
    if (!ctx.ClampMin(z_, Clamp128(zl))) return false;
    if (!ctx.ClampMax(z_, Clamp128(zh))) return false;
    // Backward: only when the divisor domain does not straddle zero.
    if (!PruneFactor(ctx, x_, y_)) return false;
    if (!PruneFactor(ctx, y_, x_)) return false;
    return true;
  }

  std::string DebugString() const override {
    return "x" + std::to_string(z_.id) + " == x" + std::to_string(x_.id) +
           " * x" + std::to_string(y_.id);
  }

  const char* kind() const override { return "times"; }

 private:
  // Prune `target` given z and the other factor `other`.
  bool PruneFactor(PropCtx& ctx, IntVar target, IntVar other) {
    int64_t ol = ctx.Min(other), oh = ctx.Max(other);
    if (ol <= 0 && oh >= 0) return true;  // divisor straddles 0: no pruning
    int64_t zl = ctx.Min(z_), zh = ctx.Max(z_);
    // target in [min, max] of z/other over corner quotients.
    double q1 = static_cast<double>(zl) / static_cast<double>(ol);
    double q2 = static_cast<double>(zl) / static_cast<double>(oh);
    double q3 = static_cast<double>(zh) / static_cast<double>(ol);
    double q4 = static_cast<double>(zh) / static_cast<double>(oh);
    double lo = std::floor(std::min(std::min(q1, q2), std::min(q3, q4)));
    double hi = std::ceil(std::max(std::max(q1, q2), std::max(q3, q4)));
    if (!ctx.ClampMin(target, static_cast<int64_t>(lo))) return false;
    if (!ctx.ClampMax(target, static_cast<int64_t>(hi))) return false;
    return true;
  }

  bool PropagateSquare(PropCtx& ctx) {
    int64_t xl = ctx.Min(x_), xh = ctx.Max(x_);
    // z >= 0 and z <= max square.
    __int128 sqmax =
        std::max(static_cast<__int128>(xl) * xl, static_cast<__int128>(xh) * xh);
    __int128 sqmin = 0;
    if (xl > 0) sqmin = static_cast<__int128>(xl) * xl;
    if (xh < 0) sqmin = static_cast<__int128>(xh) * xh;
    if (!ctx.ClampMin(z_, Clamp128(sqmin))) return false;
    if (!ctx.ClampMax(z_, Clamp128(sqmax))) return false;
    // |x| <= floor(sqrt(z_max)).
    int64_t zmax = ctx.Max(z_);
    int64_t root = static_cast<int64_t>(
        std::floor(std::sqrt(static_cast<double>(std::max<int64_t>(zmax, 0)))));
    while (static_cast<__int128>(root) * root > zmax) --root;
    while (static_cast<__int128>(root + 1) * (root + 1) <= zmax) ++root;
    if (!ctx.ClampMin(x_, -root)) return false;
    if (!ctx.ClampMax(x_, root)) return false;
    return true;
  }

  IntVar z_, x_, y_;
};

// ---------------------------------------------------------------------------
// z == |x|
// ---------------------------------------------------------------------------
class AbsProp : public Propagator {
 public:
  AbsProp(IntVar z, IntVar x) : z_(z), x_(x) {
    Watch(z_);
    Watch(x_);
  }

  bool Propagate(PropCtx& ctx) override {
    int64_t xl = ctx.Min(x_), xh = ctx.Max(x_);
    int64_t zmin = 0;
    if (xl > 0) zmin = xl;
    if (xh < 0) zmin = -xh;
    int64_t zmax = std::max(std::abs(xl), std::abs(xh));
    if (!ctx.ClampMin(z_, zmin)) return false;
    if (!ctx.ClampMax(z_, zmax)) return false;
    // x in [-z_max, z_max]; sharpen when the sign of x is known.
    int64_t zM = ctx.Max(z_), zm = ctx.Min(z_);
    if (!ctx.ClampMin(x_, -zM)) return false;
    if (!ctx.ClampMax(x_, zM)) return false;
    if (ctx.Min(x_) >= 0 && !ctx.ClampMin(x_, zm)) return false;
    if (ctx.Max(x_) <= 0 && !ctx.ClampMax(x_, -zm)) return false;
    return true;
  }

  std::string DebugString() const override {
    return "x" + std::to_string(z_.id) + " == |x" + std::to_string(x_.id) + "|";
  }

  const char* kind() const override { return "abs"; }

 private:
  IntVar z_, x_;
};

// ---------------------------------------------------------------------------
// b <=> OR(b1..bn) over 0/1 variables
// ---------------------------------------------------------------------------
class OrProp : public Propagator {
 public:
  OrProp(IntVar b, std::vector<IntVar> bs) : b_(b), bs_(std::move(bs)) {
    Watch(b_);
    for (IntVar v : bs_) Watch(v);
  }

  bool Propagate(PropCtx& ctx) override {
    int n_true = 0, n_false = 0;
    IntVar last_unfixed;
    for (IntVar v : bs_) {
      if (ctx.IsFixed(v)) {
        if (ctx.ValueOf(v) != 0) {
          ++n_true;
        } else {
          ++n_false;
        }
      } else {
        last_unfixed = v;
      }
    }
    size_t n = bs_.size();
    if (n_true > 0) {
      if (!ctx.Assign(b_, 1)) return false;
    } else if (static_cast<size_t>(n_false) == n) {
      if (!ctx.Assign(b_, 0)) return false;
    }
    if (ctx.IsFixed(b_)) {
      if (ctx.ValueOf(b_) == 0) {
        for (IntVar v : bs_) {
          if (!ctx.Assign(v, 0)) return false;
        }
      } else if (n_true == 0 && static_cast<size_t>(n_false) == n - 1 &&
                 last_unfixed.valid()) {
        // b is true and only one disjunct can still be true.
        if (!ctx.Assign(last_unfixed, 1)) return false;
      }
    }
    return true;
  }

  std::string DebugString() const override {
    return "x" + std::to_string(b_.id) + " <=> OR(" +
           std::to_string(bs_.size()) + " vars)";
  }

  const char* kind() const override { return "or"; }

 private:
  IntVar b_;
  std::vector<IntVar> bs_;
};

// ---------------------------------------------------------------------------
// z == max(x, c)
// ---------------------------------------------------------------------------
class MaxConstProp : public Propagator {
 public:
  MaxConstProp(IntVar z, IntVar x, int64_t c) : z_(z), x_(x), c_(c) {
    Watch(z_);
    Watch(x_);
  }

  bool Propagate(PropCtx& ctx) override {
    // z bounds.
    if (!ctx.ClampMin(z_, std::max(ctx.Min(x_), c_))) return false;
    if (!ctx.ClampMax(z_, std::max(ctx.Max(x_), c_))) return false;
    // x bounds: x <= z_max; if z_min > c then x == z (so x >= z_min).
    if (!ctx.ClampMax(x_, ctx.Max(z_))) return false;
    if (ctx.Min(z_) > c_ && !ctx.ClampMin(x_, ctx.Min(z_))) return false;
    return true;
  }

  std::string DebugString() const override {
    return "x" + std::to_string(z_.id) + " == max(x" + std::to_string(x_.id) +
           ", " + std::to_string(c_) + ")";
  }

  const char* kind() const override { return "max_const"; }

 private:
  IntVar z_, x_;
  int64_t c_;
};

}  // namespace

std::unique_ptr<Propagator> MakeLinear(LinExpr e, Rel rel) {
  return std::make_unique<LinearProp>(std::move(e), rel);
}
std::unique_ptr<Propagator> MakeReifiedLinear(IntVar b, LinExpr e, Rel rel) {
  return std::make_unique<ReifiedLinearProp>(b, std::move(e), rel);
}
std::unique_ptr<Propagator> MakeTimes(IntVar z, IntVar x, IntVar y) {
  return std::make_unique<TimesProp>(z, x, y);
}
std::unique_ptr<Propagator> MakeAbs(IntVar z, IntVar x) {
  return std::make_unique<AbsProp>(z, x);
}
std::unique_ptr<Propagator> MakeOr(IntVar b, std::vector<IntVar> bs) {
  return std::make_unique<OrProp>(b, std::move(bs));
}
std::unique_ptr<Propagator> MakeMaxConst(IntVar z, IntVar x, int64_t c) {
  return std::make_unique<MaxConstProp>(z, x, c);
}

}  // namespace cologne::solver

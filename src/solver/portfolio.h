// Concurrent search backends: portfolio racing and parallel LNS.
//
// Cologne shards one optimization across per-node solvers (the paper's
// per-data-center instances); these backends apply the same idea across
// cores within one invokeSolver event. Both run N workers against a shared
// IncumbentStore under one wall-clock deadline and a cooperative CancelToken
// (solver/sync.h):
//
//  * PortfolioSearch races heterogeneous configurations — complete B&B,
//    B&B with Luby restarts, and LNS walks with distinct seeds and relax-k —
//    publishing every improvement; the first worker to prove optimality (or
//    infeasibility) cancels the rest.
//  * ParallelLnsSearch runs N independently seeded LNS walks that
//    periodically adopt the best shared incumbent, mirroring Fioretto et
//    al.'s distributed LNS at thread granularity.
//
// Determinism contract: ParallelLnsSearch with num_workers == 1 delegates to
// the sequential LnsSearch, so a fixed seed reproduces its solutions
// bit-for-bit. With more workers, results depend on publication timing.
#ifndef COLOGNE_SOLVER_PORTFOLIO_H_
#define COLOGNE_SOLVER_PORTFOLIO_H_

#include "solver/search_backend.h"

namespace cologne::solver {

/// \brief Races heterogeneous search configurations on one shared deadline.
class PortfolioSearch : public SearchBackend {
 public:
  Solution Solve(const Model& model,
                 const Model::Options& options) const override;
  const char* name() const override {
    return BackendName(Backend::kPortfolio);
  }
};

/// \brief N seeded LNS walks sharing (and periodically adopting) one
/// incumbent.
class ParallelLnsSearch : public SearchBackend {
 public:
  Solution Solve(const Model& model,
                 const Model::Options& options) const override;
  const char* name() const override {
    return BackendName(Backend::kParallelLns);
  }
};

}  // namespace cologne::solver

#endif  // COLOGNE_SOLVER_PORTFOLIO_H_

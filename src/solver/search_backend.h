// Pluggable search backends (the Model::Solve strategy layer).
//
// The paper treats the solver as a black box invoked once per invokeSolver
// event (Sections 4.2/5.3); this interface makes the strategy behind that
// black box swappable. Two backends ship today: the complete copy-based
// depth-first branch-and-bound (search.cc, optionally with Luby restarts)
// and an anytime Large Neighborhood Search (lns.cc).
#ifndef COLOGNE_SOLVER_SEARCH_BACKEND_H_
#define COLOGNE_SOLVER_SEARCH_BACKEND_H_

#include <memory>

#include "solver/model.h"

namespace cologne::solver {

/// \brief A search strategy that executes one Model::Solve call.
///
/// Backends are stateless across Solve calls; cross-solve state (e.g. the
/// warm-start hint fed back by the runtime's solver bridge) travels through
/// Model::Options.
class SearchBackend {
 public:
  virtual ~SearchBackend() = default;

  /// Run search on `model` under `options`. Never mutates the model.
  virtual Solution Solve(const Model& model,
                         const Model::Options& options) const = 0;

  /// Stable identifier, matching BackendName().
  virtual const char* name() const = 0;
};

/// Factory for the built-in backends.
std::unique_ptr<SearchBackend> MakeSearchBackend(Backend backend);

}  // namespace cologne::solver

#endif  // COLOGNE_SOLVER_SEARCH_BACKEND_H_

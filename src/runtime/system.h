// System: a deployment of Cologne instances — centralized (one instance) or
// distributed (one instance per node, exchanging tuples over the simulated
// network), mirroring Figure 1 of the paper.
//
// Fault handling (crash/restart semantics):
//  * Committed-state model: a crashed node loses its own volatile state;
//    tuples it previously shipped to peers remain valid committed state
//    (a migrated VM stays migrated even if the negotiator dies).
//  * Perfect failure detection: deliveries to a crashed node are dropped at
//    the receiver with reason "node_down".
//  * Epoch fencing: every message carries the sender's incarnation epoch;
//    in-flight messages from a previous incarnation are dropped as stale.
//  * Anti-entropy rejoin: on restart the node replays its durable base-fact
//    journal (re-deriving and re-shipping localized tuples) and every live
//    peer replays its chronological send log to the node over a reliable
//    channel, restoring the state the node had learned from others.
//  * Duplicate suppression: peers track the net per-row contribution of
//    each sender; when a sender restarts, its re-derived tuples first pay
//    off the already-embedded contribution ("debt") instead of inflating
//    derivation counts — deletable remote tuples would otherwise leak. A
//    reconciliation sweep shortly after restart retracts any leftover debt
//    (rows the new incarnation no longer derives).
#ifndef COLOGNE_RUNTIME_SYSTEM_H_
#define COLOGNE_RUNTIME_SYSTEM_H_

#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "colog/planner.h"
#include "common/status.h"
#include "net/fault_plan.h"
#include "net/network.h"
#include "net/simulator.h"
#include "runtime/instance.h"
#include "runtime/trace_replay.h"

namespace cologne::runtime {

/// \brief A set of Cologne nodes over a simulated network.
///
/// Engines' remote tuples are routed through the Network (paying latency and
/// bandwidth, counted for the Figure 5 measurements). Use sim() to schedule
/// periodic solver triggers and advance virtual time.
class System {
 public:
  struct Options {
    net::LinkConfig default_link;  ///< Used by ConnectAll/AddLink default.
    uint64_t seed = 1;             ///< Network RNG seed (loss draws).
    /// Delay after a restart before leftover-debt reconciliation retracts
    /// rows the new incarnation no longer derives (must exceed the longest
    /// one-way link delay so the rejoin replay has landed).
    double reconcile_delay_s = 1.0;
    /// Carry every engine-derived tuple over the real retransmission/FIFO
    /// transport (net/reliable_channel.h). Also enabled by the program's
    /// `param NET_RELIABLE = 1` knob; the union of the two wins.
    bool net_reliable = false;
    /// Deterministic observability (metrics registry + solve provenance).
    /// Also enabled by the program's `param OBS_METRICS = 1` knob; the union
    /// of the two wins. Off by default: traces are then byte-identical to
    /// pre-observability runs.
    bool obs_metrics = false;
  };

  System(const colog::CompiledProgram* program, size_t num_nodes,
         Options options);
  System(const colog::CompiledProgram* program, size_t num_nodes)
      : System(program, num_nodes, Options{}) {}

  /// Declare tables/rules on every node and wire the message paths.
  Status Init();

  net::Simulator& sim() { return sim_; }
  net::Network& network() { return net_; }
  size_t num_nodes() const { return nodes_.size(); }
  Instance& node(NodeId id) { return *nodes_[static_cast<size_t>(id)]; }
  /// True when ordinary traffic rides the reliable FIFO transport (the
  /// NET_RELIABLE knob or Options::net_reliable).
  bool net_reliable() const { return net_reliable_; }
  /// True when the observability layer is on (the OBS_METRICS knob or
  /// Options::obs_metrics).
  bool obs_metrics() const { return obs_metrics_; }
  /// The system-wide metrics registry (solve counters accumulate here from
  /// every node; network counters are pulled in at SnapshotMetrics time).
  obs::MetricsRegistry& metrics() { return metrics_; }

  /// Sync the network/simulator counters into the registry and emit one
  /// canonical `metrics` trace line stamped with `round`. No-op (and no
  /// trace line) when obs_metrics() is off — scenario drivers call this
  /// unconditionally at round boundaries. Integer-only, virtual-time-path
  /// values: two identical runs emit byte-identical snapshots.
  void SnapshotMetrics(uint64_t round);

  /// Add a communication link between two nodes.
  Status AddLink(NodeId a, NodeId b) {
    return net_.AddLink(a, b, options_.default_link);
  }

  /// Insert a base fact at `node` and run its local fixpoint (remote tuples
  /// travel asynchronously; advance the simulator to deliver them).
  Status InsertFact(NodeId node_id, const std::string& table, Row row) {
    return node(node_id).InsertFact(table, std::move(row));
  }

  /// Schedule an invokeSolver at `node` after `delay_s` of virtual time.
  void ScheduleSolve(NodeId node_id, double delay_s,
                     std::function<void(const SolveOutput&)> on_done = {});

  // --- Fault injection -------------------------------------------------------

  /// Install a fault plan: link windows go to the network, crash/restart
  /// events and window-transition trace markers are scheduled on the
  /// simulator. Call after Init(), before running.
  Status ApplyFaultPlan(const net::FaultPlan& plan);
  const net::FaultPlan& fault_plan() const { return fault_plan_; }

  /// Crash `id` now: volatile state dropped, future deliveries to it
  /// dropped. No-op if already down.
  Status CrashNode(NodeId id);
  /// Restart `id` now: rebuild from its base-fact journal, fence its old
  /// epoch, and run the anti-entropy rejoin. No-op if not down.
  Status RestartNode(NodeId id, bool retain_warm_start);

  /// Anti-entropy resync of a *live* node: every peer replays its send log
  /// to `id` over the reliable channel, healing remote views that drifted
  /// through message loss. Already-embedded rows are debt-suppressed, rows
  /// the peers no longer stand behind are retracted by the reconciliation
  /// sweep, and ordinary in-flight messages sent before the resync are
  /// dropped on arrival (the replay supersedes them). No-op while crashed.
  Status ResyncNode(NodeId id);

  /// True when `id` is down with no pending scheduled restart.
  bool NodePermanentlyDown(NodeId id) const;

  /// True while any node has a scheduled restart it has not executed yet
  /// (drivers keep their round loops ticking until recovery completes).
  bool AnyRestartPending() const;

  /// Hook invoked after a node restarted and rejoined (drivers use it to
  /// refresh the node's local inventory facts).
  using RestartHook = std::function<void(NodeId)>;
  void SetRestartHook(RestartHook hook) { restart_hook_ = std::move(hook); }

  /// Record every delivery/drop/fault transition/solve outcome of this
  /// system into `trace` (see trace_replay.h). Pass nullptr to detach.
  void SetTrace(TraceRecorder* trace);
  TraceRecorder* trace() { return trace_; }

  /// Advance virtual time to `t`, delivering all due messages/events.
  void RunUntil(double t) { sim_.RunUntil(t); }
  /// Drain every pending event.
  void RunToQuiescence() { sim_.Run(); }

 private:
  /// Install the outbound sender on a node's engine and the inbound
  /// receiver on the network (receiver-side crash/epoch/duplicate policy).
  void WireNode(NodeId id);
  void ScheduleWindowMarkers(const net::FaultPlan& plan);
  /// Replay what `src` shipped to `dst` over the reliable channel. The
  /// chronological mode (`net_state` false) re-sends the full history in
  /// order — correct for a node rebuilt from its journal, which must
  /// re-experience every delta (including post-solve state updates). The
  /// net mode re-sends only net-surviving rows, in last-insertion order —
  /// correct for resyncing a *live* node, where already-embedded rows are
  /// debt-suppressed and must not re-fire state-update rules.
  void ReplaySentLog(NodeId src, NodeId dst, bool net_state);
  /// After `reconcile_delay_s`, retract any debt still outstanding at
  /// `dst` toward `src` — rows `src` no longer stands behind.
  void ScheduleDebtReconcile(NodeId dst, NodeId src);

  /// One remote tuple this node shipped, in send order (the anti-entropy
  /// replay log; replayed chronologically so keyed replacement at the
  /// receiver reproduces the original order).
  struct SentRecord {
    NodeId dest;
    std::string table;
    Row row;
    int sign;
  };
  /// Receiver-side bookkeeping about one sending peer.
  struct PeerState {
    uint32_t epoch_seen = 0;
    /// Bumped whenever embedded state rolls into debt (restart/resync);
    /// stale reconciliation sweeps check it and stand down.
    uint64_t sync_gen = 0;
    /// Ordinary messages sent at or before this virtual time are dropped:
    /// a reliable send-log replay issued then already covers them.
    double floor = -1;
    /// Net per-row contribution currently embedded in our engine.
    std::map<std::pair<std::string, Row>, int64_t> embedded;
    /// Contribution left over from before a restart/resync, paid off by
    /// the replayed (or re-derived) sends.
    std::map<std::pair<std::string, Row>, int64_t> debt;
  };

  const colog::CompiledProgram* program_;
  Options options_;
  net::Simulator sim_;
  net::Network net_;
  bool net_reliable_ = false;
  bool obs_metrics_ = false;
  obs::MetricsRegistry metrics_;
  std::vector<std::unique_ptr<Instance>> nodes_;
  std::vector<std::vector<SentRecord>> sent_log_;   // [src]
  std::vector<std::map<NodeId, PeerState>> rx_;     // [dst][src]
  std::vector<char> restart_pending_;               // [node]
  net::FaultPlan fault_plan_;
  TraceRecorder* trace_ = nullptr;
  RestartHook restart_hook_;
};

}  // namespace cologne::runtime

#endif  // COLOGNE_RUNTIME_SYSTEM_H_

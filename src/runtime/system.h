// System: a deployment of Cologne instances — centralized (one instance) or
// distributed (one instance per node, exchanging tuples over the simulated
// network), mirroring Figure 1 of the paper.
#ifndef COLOGNE_RUNTIME_SYSTEM_H_
#define COLOGNE_RUNTIME_SYSTEM_H_

#include <functional>
#include <memory>
#include <vector>

#include "colog/planner.h"
#include "common/status.h"
#include "net/network.h"
#include "net/simulator.h"
#include "runtime/instance.h"

namespace cologne::runtime {

/// \brief A set of Cologne nodes over a simulated network.
///
/// Engines' remote tuples are routed through the Network (paying latency and
/// bandwidth, counted for the Figure 5 measurements). Use sim() to schedule
/// periodic solver triggers and advance virtual time.
class System {
 public:
  struct Options {
    net::LinkConfig default_link;  ///< Used by ConnectAll/AddLink default.
    uint64_t seed = 1;             ///< Network RNG seed (loss draws).
  };

  System(const colog::CompiledProgram* program, size_t num_nodes,
         Options options);
  System(const colog::CompiledProgram* program, size_t num_nodes)
      : System(program, num_nodes, Options{}) {}

  /// Declare tables/rules on every node and wire the message paths.
  Status Init();

  net::Simulator& sim() { return sim_; }
  net::Network& network() { return net_; }
  size_t num_nodes() const { return nodes_.size(); }
  Instance& node(NodeId id) { return *nodes_[static_cast<size_t>(id)]; }

  /// Add a communication link between two nodes.
  Status AddLink(NodeId a, NodeId b) {
    return net_.AddLink(a, b, options_.default_link);
  }

  /// Insert a base fact at `node` and run its local fixpoint (remote tuples
  /// travel asynchronously; advance the simulator to deliver them).
  Status InsertFact(NodeId node_id, const std::string& table, Row row) {
    return node(node_id).InsertFact(table, std::move(row));
  }

  /// Schedule an invokeSolver at `node` after `delay_s` of virtual time.
  void ScheduleSolve(NodeId node_id, double delay_s,
                     std::function<void(const SolveOutput&)> on_done = {});

  /// Advance virtual time to `t`, delivering all due messages/events.
  void RunUntil(double t) { sim_.RunUntil(t); }
  /// Drain every pending event.
  void RunToQuiescence() { sim_.Run(); }

 private:
  const colog::CompiledProgram* program_;
  Options options_;
  net::Simulator sim_;
  net::Network net_;
  std::vector<std::unique_ptr<Instance>> nodes_;
};

}  // namespace cologne::runtime

#endif  // COLOGNE_RUNTIME_SYSTEM_H_

#include "runtime/trace_replay.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/strings.h"

namespace cologne::runtime {

namespace {

const char* NetKindName(net::NetEvent::Kind kind) {
  switch (kind) {
    case net::NetEvent::Kind::kSend: return "send";
    case net::NetEvent::Kind::kDeliver: return "deliver";
    case net::NetEvent::Kind::kDrop: return "drop";
    case net::NetEvent::Kind::kDup: return "dup";
  }
  return "?";
}

}  // namespace

void TraceRecorder::Header(const std::string& program, uint64_t seed,
                           const net::FaultPlan& plan) {
  Line(StrFormat("{\"ev\":\"header\",\"program\":\"%s\",\"seed\":%llu,"
                 "\"fault_plan\":%s}",
                 JsonEscape(program).c_str(),
                 static_cast<unsigned long long>(seed),
                 plan.ToJson().c_str()));
}

void TraceRecorder::Net(const net::NetEvent& ev) {
  std::string line = StrFormat(
      "{\"t\":%s,\"ev\":\"%s\",\"from\":%d,\"to\":%d,\"table\":\"%s\"",
      DoubleToShortestString(ev.t).c_str(), NetKindName(ev.kind), ev.from,
      ev.to, JsonEscape(ev.msg->table).c_str());
  if (ev.kind == net::NetEvent::Kind::kDrop) {
    line += StrFormat(",\"reason\":\"%s\"", ev.detail);
  } else {
    line += StrFormat(",\"row\":\"%s\",\"sign\":%d",
                      JsonEscape(RowToString(ev.msg->row)).c_str(),
                      ev.msg->sign);
    if (ev.msg->seq != 0) {
      // Reliable-channel sequence number (cumulative ack for @ack packets);
      // omitted for unsequenced datagrams so pre-channel traces are
      // unchanged.
      line += StrFormat(",\"seq\":%llu",
                        static_cast<unsigned long long>(ev.msg->seq));
    }
    if (ev.kind == net::NetEvent::Kind::kSend) {
      line += StrFormat(",\"bytes\":%zu", ev.msg->WireSize());
    }
    if (ev.detail != nullptr && ev.detail[0] != '\0') {
      line += StrFormat(",\"detail\":\"%s\"", ev.detail);
    }
  }
  line += '}';
  Line(std::move(line));
}

void TraceRecorder::Fault(const char* kind, const std::string& detail) {
  std::string line =
      StrFormat("{\"t\":%s,\"ev\":\"fault\",\"kind\":\"%s\"",
                DoubleToShortestString(Now()).c_str(), kind);
  if (!detail.empty()) {
    line += ',';
    line += detail;
  }
  line += '}';
  Line(std::move(line));
}

void TraceRecorder::Solve(NodeId node, const char* status, bool has_objective,
                          double objective, size_t vars, size_t groups,
                          bool warm_started) {
  std::string line = StrFormat(
      "{\"t\":%s,\"ev\":\"solve\",\"node\":%d,\"status\":\"%s\"",
      DoubleToShortestString(Now()).c_str(), node, status);
  if (has_objective) {
    line += StrFormat(",\"objective\":%s",
                      DoubleToShortestString(objective).c_str());
  }
  line += StrFormat(",\"vars\":%zu", vars);
  if (groups > 0) line += StrFormat(",\"groups\":%zu", groups);
  line += StrFormat(",\"warm\":%d}", warm_started ? 1 : 0);
  Line(std::move(line));
}

void TraceRecorder::RxDrop(NodeId from, NodeId to, const std::string& table,
                           const char* reason) {
  Line(StrFormat(
      "{\"t\":%s,\"ev\":\"rx_drop\",\"from\":%d,\"to\":%d,\"table\":\"%s\","
      "\"reason\":\"%s\"}",
      DoubleToShortestString(Now()).c_str(), from, to,
      JsonEscape(table).c_str(), reason));
}

std::string TraceRecorder::ToString() const {
  std::string out;
  for (const std::string& line : lines_) {
    out += line;
    out += '\n';
  }
  return out;
}

Status TraceRecorder::WriteFile(const std::string& path) const {
  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::RuntimeError("cannot open trace file for writing: " + path);
  }
  std::string body = ToString();
  size_t written = fwrite(body.data(), 1, body.size(), f);
  fclose(f);
  if (written != body.size()) {
    return Status::RuntimeError("short write to trace file: " + path);
  }
  return Status::OK();
}

Result<std::vector<std::string>> ReadTraceLines(const std::string& path) {
  FILE* f = fopen(path.c_str(), "r");
  if (f == nullptr) {
    return Status::NotFound("cannot open trace file: " + path);
  }
  std::string body;
  char buf[4096];
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), f)) > 0) body.append(buf, n);
  fclose(f);
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < body.size()) {
    size_t pos = body.find('\n', start);
    if (pos == std::string::npos) {
      lines.push_back(body.substr(start));
      break;
    }
    lines.push_back(body.substr(start, pos - start));
    start = pos + 1;
  }
  return lines;
}

std::string DiffTraces(const std::vector<std::string>& a,
                       const std::vector<std::string>& b) {
  size_t common = std::min(a.size(), b.size());
  for (size_t i = 0; i < common; ++i) {
    if (a[i] != b[i]) {
      return StrFormat("line %zu differs:\n  a: %s\n  b: %s", i + 1,
                       a[i].c_str(), b[i].c_str());
    }
  }
  if (a.size() != b.size()) {
    return StrFormat("length differs: %zu vs %zu lines (first extra: %s)",
                     a.size(), b.size(),
                     (a.size() > b.size() ? a[common] : b[common]).c_str());
  }
  return "";
}

Result<TraceHeader> ParseTraceHeader(const std::string& header_line) {
  // The header is canonical: fixed field order, fault_plan last.
  auto find_field = [&](const char* key) -> size_t {
    std::string needle = StrFormat("\"%s\":", key);
    return header_line.find(needle);
  };
  size_t ev = header_line.find("\"ev\":\"header\"");
  if (ev == std::string::npos) {
    return Status::ParseError("not a trace header line");
  }
  TraceHeader out;
  size_t prog = find_field("program");
  if (prog != std::string::npos) {
    size_t begin = header_line.find('"', prog + 10);
    size_t end = header_line.find('"', begin + 1);
    if (begin == std::string::npos || end == std::string::npos) {
      return Status::ParseError("malformed program field");
    }
    out.program = header_line.substr(begin + 1, end - begin - 1);
  }
  size_t seed = find_field("seed");
  if (seed != std::string::npos) {
    out.seed = strtoull(header_line.c_str() + seed + 7, nullptr, 10);
  }
  size_t plan = find_field("fault_plan");
  if (plan != std::string::npos) {
    // The plan object runs to the final '}' of the line (it is the last
    // field in the canonical header).
    size_t begin = plan + 13;
    size_t end = header_line.rfind('}');
    if (end == std::string::npos || end <= begin) {
      return Status::ParseError("malformed fault_plan field");
    }
    COLOGNE_ASSIGN_OR_RETURN(
        parsed, net::FaultPlan::FromJson(header_line.substr(begin, end - begin)));
    out.plan = std::move(parsed);
  }
  return out;
}

}  // namespace cologne::runtime

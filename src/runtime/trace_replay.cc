#include "runtime/trace_replay.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/json.h"
#include "common/strings.h"

namespace cologne::runtime {

namespace {

const char* NetKindName(net::NetEvent::Kind kind) {
  switch (kind) {
    case net::NetEvent::Kind::kSend: return "send";
    case net::NetEvent::Kind::kDeliver: return "deliver";
    case net::NetEvent::Kind::kDrop: return "drop";
    case net::NetEvent::Kind::kDup: return "dup";
  }
  return "?";
}

}  // namespace

void TraceRecorder::Header(const std::string& program, uint64_t seed,
                           const net::FaultPlan& plan) {
  JsonWriter w;
  w.BeginObject();
  w.Key("ev").String("header");
  w.Key("program").String(program);
  w.Key("seed").UInt(seed);
  w.Key("fault_plan").Raw(plan.ToJson());
  w.EndObject();
  Line(w.Take());
}

void TraceRecorder::Net(const net::NetEvent& ev) {
  JsonWriter w;
  w.BeginObject();
  w.Key("t").Double(ev.t);
  w.Key("ev").String(NetKindName(ev.kind));
  w.Key("from").Int(ev.from);
  w.Key("to").Int(ev.to);
  w.Key("table").String(ev.msg->table);
  if (ev.kind == net::NetEvent::Kind::kDrop) {
    w.Key("reason").String(ev.detail);
  } else {
    w.Key("row").String(RowToString(ev.msg->row));
    w.Key("sign").Int(ev.msg->sign);
    if (ev.msg->seq != 0) {
      // Reliable-channel sequence number (cumulative ack for @ack packets);
      // omitted for unsequenced datagrams so pre-channel traces are
      // unchanged.
      w.Key("seq").UInt(ev.msg->seq);
    }
    if (ev.kind == net::NetEvent::Kind::kSend) {
      w.Key("bytes").UInt(ev.msg->WireSize());
    }
    if (ev.detail != nullptr && ev.detail[0] != '\0') {
      w.Key("detail").String(ev.detail);
    }
  }
  w.EndObject();
  Line(w.Take());
}

void TraceRecorder::Fault(const char* kind, const std::string& detail) {
  JsonWriter w;
  w.BeginObject();
  w.Key("t").Double(Now());
  w.Key("ev").String("fault");
  w.Key("kind").String(kind);
  w.Members(detail);
  w.EndObject();
  Line(w.Take());
}

void TraceRecorder::Solve(NodeId node, const char* status, bool has_objective,
                          double objective, size_t vars, size_t groups,
                          bool warm_started,
                          const std::vector<SolveProvGroup>* prov,
                          const SolveIncr* incr) {
  JsonWriter w;
  w.BeginObject();
  w.Key("t").Double(Now());
  w.Key("ev").String("solve");
  w.Key("node").Int(node);
  w.Key("status").String(status);
  if (has_objective) w.Key("objective").Double(objective);
  w.Key("vars").UInt(vars);
  if (groups > 0) w.Key("groups").UInt(groups);
  w.Key("warm").Int(warm_started ? 1 : 0);
  if (prov != nullptr && !prov->empty()) {
    // Omitted entirely when provenance was not recorded (OBS_METRICS off),
    // keeping pre-observability traces byte-identical.
    w.Key("prov").BeginArray();
    for (const SolveProvGroup& g : *prov) {
      w.BeginObject();
      if (!g.key.empty()) w.Key("g").String(g.key);
      w.Key("src").String(g.src);
      if (!g.tight.empty()) {
        w.Key("tight").BeginArray();
        for (const std::string& label : g.tight) w.String(label);
        w.EndArray();
      }
      w.EndObject();
    }
    w.EndArray();
  }
  if (incr != nullptr) {
    // Omitted entirely when the incremental path is off, keeping
    // pre-incremental traces byte-identical.
    w.Key("incr").BeginObject();
    w.Key("dirty").Int(incr->dirty);
    w.Key("clean").Int(incr->clean);
    w.Key("fallback").Int(incr->fallback ? 1 : 0);
    // Only present on reused solves, so non-reuse incremental traces keep
    // their previous shape.
    if (incr->reused) w.Key("reused").Int(1);
    w.EndObject();
  }
  w.EndObject();
  Line(w.Take());
}

void TraceRecorder::Metrics(uint64_t round, const obs::MetricsRegistry& reg) {
  JsonWriter w;
  w.BeginObject();
  w.Key("t").Double(Now());
  w.Key("ev").String("metrics");
  w.Key("round").UInt(round);
  reg.AppendSnapshot(&w);
  w.EndObject();
  Line(w.Take());
}

void TraceRecorder::RxDrop(NodeId from, NodeId to, const std::string& table,
                           const char* reason) {
  JsonWriter w;
  w.BeginObject();
  w.Key("t").Double(Now());
  w.Key("ev").String("rx_drop");
  w.Key("from").Int(from);
  w.Key("to").Int(to);
  w.Key("table").String(table);
  w.Key("reason").String(reason);
  w.EndObject();
  Line(w.Take());
}

std::string TraceRecorder::ToString() const {
  std::string out;
  for (const std::string& line : lines_) {
    out += line;
    out += '\n';
  }
  return out;
}

Status TraceRecorder::WriteFile(const std::string& path) const {
  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::RuntimeError("cannot open trace file for writing: " + path);
  }
  std::string body = ToString();
  size_t written = fwrite(body.data(), 1, body.size(), f);
  fclose(f);
  if (written != body.size()) {
    return Status::RuntimeError("short write to trace file: " + path);
  }
  return Status::OK();
}

Result<std::vector<std::string>> ReadTraceLines(const std::string& path) {
  FILE* f = fopen(path.c_str(), "r");
  if (f == nullptr) {
    return Status::NotFound("cannot open trace file: " + path);
  }
  std::string body;
  char buf[4096];
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), f)) > 0) body.append(buf, n);
  fclose(f);
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < body.size()) {
    size_t pos = body.find('\n', start);
    if (pos == std::string::npos) {
      lines.push_back(body.substr(start));
      break;
    }
    lines.push_back(body.substr(start, pos - start));
    start = pos + 1;
  }
  return lines;
}

std::string DiffTraces(const std::vector<std::string>& a,
                       const std::vector<std::string>& b) {
  size_t common = std::min(a.size(), b.size());
  for (size_t i = 0; i < common; ++i) {
    if (a[i] != b[i]) {
      return StrFormat("line %zu differs:\n  a: %s\n  b: %s", i + 1,
                       a[i].c_str(), b[i].c_str());
    }
  }
  if (a.size() != b.size()) {
    return StrFormat("length differs: %zu vs %zu lines (first extra: %s)",
                     a.size(), b.size(),
                     (a.size() > b.size() ? a[common] : b[common]).c_str());
  }
  return "";
}

Result<TraceHeader> ParseTraceHeader(const std::string& header_line) {
  // The header is canonical: fixed field order, fault_plan last.
  auto find_field = [&](const char* key) -> size_t {
    std::string needle = StrFormat("\"%s\":", key);
    return header_line.find(needle);
  };
  size_t ev = header_line.find("\"ev\":\"header\"");
  if (ev == std::string::npos) {
    return Status::ParseError("not a trace header line");
  }
  TraceHeader out;
  size_t prog = find_field("program");
  if (prog != std::string::npos) {
    size_t begin = header_line.find('"', prog + 10);
    size_t end = header_line.find('"', begin + 1);
    if (begin == std::string::npos || end == std::string::npos) {
      return Status::ParseError("malformed program field");
    }
    out.program = header_line.substr(begin + 1, end - begin - 1);
  }
  size_t seed = find_field("seed");
  if (seed != std::string::npos) {
    out.seed = strtoull(header_line.c_str() + seed + 7, nullptr, 10);
  }
  size_t plan = find_field("fault_plan");
  if (plan != std::string::npos) {
    // The plan object runs to the final '}' of the line (it is the last
    // field in the canonical header).
    size_t begin = plan + 13;
    size_t end = header_line.rfind('}');
    if (end == std::string::npos || end <= begin) {
      return Status::ParseError("malformed fault_plan field");
    }
    COLOGNE_ASSIGN_OR_RETURN(
        parsed, net::FaultPlan::FromJson(header_line.substr(begin, end - begin)));
    out.plan = std::move(parsed);
  }
  return out;
}

}  // namespace cologne::runtime

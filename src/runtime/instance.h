// A Cologne instance: one node's Datalog engine + solver bridge + the
// writeback path that materializes optimization output as engine tables
// (paper Section 5.1, "materialized as RapidNet tables, which may trigger
// reevaluation of other rules via incremental view maintenance").
//
// Fault model: the instance journals every application-level base fact
// (InsertFact/DeleteFact/ApplyFact) into a durable log. Crash() drops all
// volatile state — engine tables, derived tuples, solver writeback diff
// base, optionally the warm-start cache — while the log survives, modeling
// stable storage. Restart() + ReplayBaseFacts() rebuild the engine and
// re-run incremental evaluation from the log; the node's epoch is bumped so
// peers can fence off stale in-flight messages (runtime::System wires this).
#ifndef COLOGNE_RUNTIME_INSTANCE_H_
#define COLOGNE_RUNTIME_INSTANCE_H_

#include <map>
#include <string>
#include <vector>

#include "colog/planner.h"
#include "common/status.h"
#include "datalog/engine.h"
#include "runtime/solver_bridge.h"
#include "runtime/trace_replay.h"
#include "solver/context_cache.h"

namespace cologne::runtime {

/// \brief One Cologne node.
///
/// Owns a Datalog engine loaded with the program's regular and post-solve
/// rules. InvokeSolver() runs the bridge, then *replaces* this node's
/// previously-written solver output rows with the new ones (diff-based, so
/// downstream rules see clean insert/delete deltas).
class Instance {
 public:
  Instance(NodeId id, const colog::CompiledProgram* program)
      : id_(id), program_(program), engine_(EngineSelf()) {}

  /// Declare tables and install engine rules. Call once before use.
  Status Init();

  NodeId id() const { return id_; }
  datalog::Engine& engine() { return engine_; }
  const datalog::Engine& engine() const { return engine_; }
  const colog::CompiledProgram& program() const { return *program_; }

  /// Insert/delete a base fact and run incremental evaluation. The fact is
  /// journaled durably and survives a crash.
  Status InsertFact(const std::string& table, Row row);
  Status DeleteFact(const std::string& table, Row row);

  /// Journal + apply one base-fact delta without flushing (batch form used
  /// by the trace-replay drivers); pair with Flush().
  Status ApplyFact(const std::string& table, Row row, int sign);
  /// Drain the engine's delta queue to fixpoint.
  Status Flush() { return engine_.Flush(); }

  // --- Crash / restart -------------------------------------------------------

  /// True while the node is down: facts, solves, and deliveries fail.
  bool crashed() const { return crashed_; }
  /// Incarnation counter; bumped on every Restart(). Messages stamped with
  /// an older epoch are stale and must be dropped by the receiver.
  uint32_t epoch() const { return epoch_; }
  uint64_t crash_count() const { return crash_count_; }

  /// Drop all volatile state (tables, derived tuples, solver writeback diff
  /// base). The engine is rebuilt empty-but-declared so readers never see
  /// dangling tables. The base-fact journal and warm-start cache survive.
  Status Crash();

  /// Come back up with a fresh engine (epoch bumped). `retain_warm_start`
  /// keeps the pre-crash warm-start cache; otherwise it is cleared. Callers
  /// must re-install the engine sender (System::RestartNode does) before
  /// ReplayBaseFacts().
  Status Restart(bool retain_warm_start);

  /// Re-apply the durable journal in chronological order, re-running
  /// incremental evaluation (re-derives and re-ships localized tuples).
  Status ReplayBaseFacts();

  /// Run one COP execution (the paper's invokeSolver event): build the
  /// model from current engine state, search, write back the optimization
  /// output, and flush downstream rules. Fails when the node is crashed.
  ///
  /// The single solve entry point. `request.mode` selects the shape:
  /// kFull is one ungrouped model; kBatched partitions var rows into
  /// per-unit decision groups by `request.group_key_prefix` key columns
  /// (the scenario drivers aggregate a node's incident links this way);
  /// kIncremental adds the fact-delta fingerprint path on top of the
  /// grouping, independent of the SOLVER_INCREMENTAL knob (which enables
  /// the same path for every mode).
  Result<SolveOutput> Solve(const SolveRequest& request = SolveRequest{});

  /// Deprecated pre-SolveRequest entry point; use Solve().
  [[deprecated("use Solve(SolveRequest{})")]]
  Result<SolveOutput> InvokeSolver() {
    return Solve(SolveRequest{});
  }

  /// Deprecated pre-SolveRequest batched entry point; use Solve() with
  /// mode = SolveMode::kBatched.
  [[deprecated("use Solve(SolveRequest{.mode = SolveMode::kBatched, ...})")]]
  Result<SolveOutput> InvokeSolverBatched(int group_key_prefix) {
    SolveRequest req;
    req.mode = SolveMode::kBatched;
    req.group_key_prefix = group_key_prefix;
    return Solve(req);
  }

  /// Per-solve knobs (SOLVER_MAX_TIME, SOLVER_BACKEND, SOLVER_SEED, ...).
  /// Init() seeds these from the program's `param SOLVER_*` knobs; an
  /// explicit call afterwards overrides them (the runtime caller wins).
  void set_solve_options(const SolveOptions& o) { solve_options_ = o; }
  const SolveOptions& solve_options() const { return solve_options_; }

  /// Cached last solution per var-table row, used to warm-start the next
  /// solve (cleared with reset_warm_start()). The mutable overload exposes
  /// tuning (e.g. WarmStartCache::max_idle_solves).
  const WarmStartCache& warm_start_cache() const { return warm_cache_; }
  WarmStartCache& warm_start_cache() { return warm_cache_; }
  /// Clears the incremental fingerprints too: they describe the model whose
  /// incumbent the cache held, so they cannot outlive it. The context cache
  /// goes with them — its proofs are bound-relative to that incumbent's
  /// model namespace, and "reset cross-solve state" should mean all of it.
  void reset_warm_start() {
    warm_cache_.clear();
    incr_state_.clear();
    ctx_cache_.Clear();
  }

  /// Persistent exhausted-subtree proof cache (SOLVER_CACHE); handed to the
  /// bridge on every solve where the knob is on, so proofs survive across
  /// solves of this instance. Read-only access for tests/metrics.
  const solver::ContextCache& context_cache() const { return ctx_cache_; }

  /// Cross-solve fingerprint state of the incremental path (read-only; the
  /// tests assert stability across journal replay and crash/restart).
  const IncrementalState& incremental_state() const { return incr_state_; }

  /// Base-fact tables the journal touched since the last completed solve —
  /// the advisory delta hint for callers assembling a SolveRequest.
  /// Fingerprints stay authoritative: network-delivered deltas bypass the
  /// local journal.
  const std::vector<std::string>& touched_tables() const {
    return touched_tables_;
  }

  /// Trace sink for invokeSolver outcomes (deterministic fields only).
  void set_trace(TraceRecorder* trace) { trace_ = trace; }

  /// Observability sink (OBS_METRICS): when set, every solve folds its
  /// deterministic counters (nodes, failures, per-kind propagations, LNS
  /// accepts, warm starts) into the registry and records per-group solve
  /// provenance for the trace. Pass nullptr to detach (the default — the
  /// solve path is then byte-for-byte the pre-observability one).
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

  /// Cumulative number of Solve calls (reused solves included).
  uint64_t solve_count() const { return solve_count_; }
  /// Wall-clock milliseconds spent inside the solver across all calls.
  double total_solve_ms() const { return total_solve_ms_; }

 private:
  NodeId EngineSelf() const {
    return program_->distributed ? id_ : datalog::Engine::kCentralized;
  }
  /// Declare tables + install rules on a fresh engine (Init and Restart).
  Status InitEngine();
  /// Materialize solver output as engine deltas. `flush_per_delta` runs the
  /// incremental fixpoint after every inserted row instead of once at the
  /// end: batched solves write several migVm rows that address the same
  /// read-modify-write state row (r3's curVm update), and each must observe
  /// its predecessors' effect — the same interleaving the per-link protocol
  /// produces one solve at a time.
  Status Writeback(const std::map<std::string, std::vector<Row>>& tables,
                   bool flush_per_delta);

  struct BaseFact {
    std::string table;
    Row row;
    int sign;
  };

  NodeId id_;
  const colog::CompiledProgram* program_;
  datalog::Engine engine_;
  SolveOptions solve_options_;
  WarmStartCache warm_cache_;
  /// Per-decision-group model fingerprints of the last cache-refreshing
  /// solve (the incremental path's clean/dirty baseline). Survives
  /// crash/restart alongside the warm cache — journal replay rebuilds the
  /// same model, so the fingerprints still classify correctly.
  IncrementalState incr_state_;
  /// Cross-solve context cache (SOLVER_CACHE); see context_cache().
  solver::ContextCache ctx_cache_;
  /// Tables touched by the journal since the last completed solve (sorted,
  /// deduplicated); the advisory SolveRequest::changed_tables default.
  std::vector<std::string> touched_tables_;
  /// Rows this node wrote to each solver output table on the previous solve
  /// (sorted, deduplicated) — the diff base for replacement.
  std::map<std::string, std::vector<Row>> owned_rows_;
  /// Durable journal of application-level base facts, replayed on restart.
  std::vector<BaseFact> base_log_;
  bool crashed_ = false;
  uint32_t epoch_ = 0;
  uint64_t crash_count_ = 0;
  TraceRecorder* trace_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  uint64_t solve_count_ = 0;
  double total_solve_ms_ = 0;
};

}  // namespace cologne::runtime

#endif  // COLOGNE_RUNTIME_INSTANCE_H_

// A Cologne instance: one node's Datalog engine + solver bridge + the
// writeback path that materializes optimization output as engine tables
// (paper Section 5.1, "materialized as RapidNet tables, which may trigger
// reevaluation of other rules via incremental view maintenance").
#ifndef COLOGNE_RUNTIME_INSTANCE_H_
#define COLOGNE_RUNTIME_INSTANCE_H_

#include <map>
#include <string>
#include <vector>

#include "colog/planner.h"
#include "common/status.h"
#include "datalog/engine.h"
#include "runtime/solver_bridge.h"

namespace cologne::runtime {

/// \brief One Cologne node.
///
/// Owns a Datalog engine loaded with the program's regular and post-solve
/// rules. InvokeSolver() runs the bridge, then *replaces* this node's
/// previously-written solver output rows with the new ones (diff-based, so
/// downstream rules see clean insert/delete deltas).
class Instance {
 public:
  Instance(NodeId id, const colog::CompiledProgram* program)
      : id_(id), program_(program),
        engine_(program->distributed ? id : datalog::Engine::kCentralized) {}

  /// Declare tables and install engine rules. Call once before use.
  Status Init();

  NodeId id() const { return id_; }
  datalog::Engine& engine() { return engine_; }
  const datalog::Engine& engine() const { return engine_; }
  const colog::CompiledProgram& program() const { return *program_; }

  /// Insert/delete a base fact and run incremental evaluation.
  Status InsertFact(const std::string& table, Row row);
  Status DeleteFact(const std::string& table, Row row);

  /// Run one COP execution (the paper's invokeSolver event): build the
  /// model from current engine state, search, write back the optimization
  /// output, and flush downstream rules.
  Result<SolveOutput> InvokeSolver();

  /// Per-solve knobs (SOLVER_MAX_TIME, SOLVER_BACKEND, SOLVER_SEED, ...).
  /// Init() seeds these from the program's `param SOLVER_*` knobs; an
  /// explicit call afterwards overrides them (the runtime caller wins).
  void set_solve_options(const SolveOptions& o) { solve_options_ = o; }
  const SolveOptions& solve_options() const { return solve_options_; }

  /// Cached last solution per var-table row, used to warm-start the next
  /// InvokeSolver (cleared with reset_warm_start()). The mutable overload
  /// exposes tuning (e.g. WarmStartCache::max_idle_solves).
  const WarmStartCache& warm_start_cache() const { return warm_cache_; }
  WarmStartCache& warm_start_cache() { return warm_cache_; }
  void reset_warm_start() { warm_cache_.clear(); }

  /// Cumulative number of InvokeSolver calls.
  uint64_t solve_count() const { return solve_count_; }
  /// Wall-clock milliseconds spent inside the solver across all calls.
  double total_solve_ms() const { return total_solve_ms_; }

 private:
  Status Writeback(const std::map<std::string, std::vector<Row>>& tables);

  NodeId id_;
  const colog::CompiledProgram* program_;
  datalog::Engine engine_;
  SolveOptions solve_options_;
  WarmStartCache warm_cache_;
  /// Rows this node wrote to each solver output table on the previous solve
  /// (sorted, deduplicated) — the diff base for replacement.
  std::map<std::string, std::vector<Row>> owned_rows_;
  uint64_t solve_count_ = 0;
  double total_solve_ms_ = 0;
};

}  // namespace cologne::runtime

#endif  // COLOGNE_RUNTIME_INSTANCE_H_

// The solver bridge: Cologne's integration of the Datalog engine with the
// constraint solver (paper Sections 5.3-5.4).
//
// At each invokeSolver event the bridge
//   1. instantiates solver variables for every `var` table row (bounded by
//      the current contents of the `forall` table),
//   2. evaluates solver *derivation* rules bottom-up over engine tables and
//      bridge-local solver tables, turning selection/aggregation expressions
//      over solver attributes into constraint-network nodes,
//   3. evaluates solver *constraint* rules, posting hard constraints,
//   4. runs branch-and-bound under the goal, and
//   5. re-evaluates the derivation rules concretely under the solution so the
//      optimization output can be materialized back into engine tables
//      (triggering downstream incremental evaluation, Section 5.1).
#ifndef COLOGNE_RUNTIME_SOLVER_BRIDGE_H_
#define COLOGNE_RUNTIME_SOLVER_BRIDGE_H_

#include <map>
#include <string>
#include <vector>

#include "colog/planner.h"
#include "common/status.h"
#include "datalog/engine.h"
#include "solver/model.h"

namespace cologne::runtime {

/// Per-solve knobs (the paper's SOLVER_MAX_TIME).
struct SolveOptions {
  double time_limit_ms = 10'000;
  uint64_t node_limit = 0;
};

/// Result of one invokeSolver execution.
struct SolveOutput {
  solver::SolveStatus status = solver::SolveStatus::kUnknown;
  solver::SolveStats stats;
  /// Concrete contents of every solver output table (var tables, derived
  /// solver tables, goal table) under the best solution found.
  std::map<std::string, std::vector<Row>> tables;
  /// Concrete goal value (e.g. the true CPU stdev for a STDEV goal — the
  /// integer search objective is a monotone surrogate).
  double objective = 0;
  bool has_objective = false;
  size_t model_vars = 0;
  size_t model_propagators = 0;
  size_t model_memory_bytes = 0;

  bool has_solution() const {
    return status == solver::SolveStatus::kOptimal ||
           status == solver::SolveStatus::kFeasible;
  }
};

/// \brief Executes the solver-side of a compiled Colog program against the
/// current state of a Datalog engine.
///
/// Stateless across calls: each Solve builds a fresh model, so it can run
/// once per periodic trigger or table-update event.
class SolverBridge {
 public:
  SolverBridge(const colog::CompiledProgram* program, datalog::Engine* engine)
      : program_(program), engine_(engine) {}

  /// Run one complete COP execution. Returns an error Status only for
  /// program-level failures (malformed model); an infeasible or timed-out
  /// search is reported through SolveOutput::status.
  Result<SolveOutput> Solve(const SolveOptions& options) const;

 private:
  const colog::CompiledProgram* program_;
  datalog::Engine* engine_;
};

}  // namespace cologne::runtime

#endif  // COLOGNE_RUNTIME_SOLVER_BRIDGE_H_

// The solver bridge: Cologne's integration of the Datalog engine with the
// constraint solver (paper Sections 5.3-5.4).
//
// At each invokeSolver event the bridge
//   1. instantiates solver variables for every `var` table row (bounded by
//      the current contents of the `forall` table),
//   2. evaluates solver *derivation* rules bottom-up over engine tables and
//      bridge-local solver tables, turning selection/aggregation expressions
//      over solver attributes into constraint-network nodes,
//   3. evaluates solver *constraint* rules, posting hard constraints,
//   4. runs branch-and-bound under the goal, and
//   5. re-evaluates the derivation rules concretely under the solution so the
//      optimization output can be materialized back into engine tables
//      (triggering downstream incremental evaluation, Section 5.1).
#ifndef COLOGNE_RUNTIME_SOLVER_BRIDGE_H_
#define COLOGNE_RUNTIME_SOLVER_BRIDGE_H_

#include <map>
#include <string>
#include <vector>

#include "colog/planner.h"
#include "common/status.h"
#include "datalog/engine.h"
#include "runtime/trace_replay.h"
#include "solver/model.h"

namespace cologne::runtime {

/// Per-solve knobs (the paper's SOLVER_MAX_TIME plus this implementation's
/// backend knobs; see colog::SolverKnobsIR for the in-language spellings).
struct SolveOptions {
  double time_limit_ms = 10'000;
  uint64_t node_limit = 0;
  /// Search strategy (SOLVER_BACKEND).
  solver::Backend backend = solver::Backend::kBranchAndBound;
  /// Seed for randomized search decisions (SOLVER_SEED).
  uint64_t seed = 0x10C5;
  /// Luby restart base for branch-and-bound, in nodes (SOLVER_RESTARTS);
  /// 0 disables restarts.
  uint64_t restart_base_nodes = 0;
  /// Worker threads for the concurrent backends (SOLVER_WORKERS): portfolio
  /// race width / parallel-LNS walk count. Sequential backends ignore it.
  int num_workers = 1;
  /// Cap on backend improvement iterations; 0 = until the time budget.
  uint64_t max_iterations = 0;
  /// Batched-solve variable grouping: when > 0, var-table rows whose first
  /// `group_key_prefix` regular key columns agree form one decision group
  /// in the model (e.g. prefix 2 on migVm(X,Y,D,R) groups per (X,Y) link).
  /// Group-aware backends relax whole groups as LNS neighborhoods; 0
  /// disables grouping. See SolverBridge::SolveBatched.
  int group_key_prefix = 0;
  /// Feed the previous solution of this program back into the next solve as
  /// a warm-start hint (the recurring invokeSolver loop of Section 4.2
  /// usually re-solves a near-identical model).
  bool warm_start = true;
  /// Record per-decision-group solve provenance (binding constraints at the
  /// incumbent, value-source classification) into SolveOutput::provenance.
  /// Enabled by the runtime when OBS_METRICS is on; off by default so the
  /// pre-observability solve path (and its traces) is untouched.
  bool record_provenance = false;
};

/// Apply a compiled program's `param SOLVER_*` knobs on top of `base`.
/// Knobs the program does not set keep their `base` values.
SolveOptions ResolveSolveOptions(const colog::CompiledProgram& program,
                                 SolveOptions base);

/// \brief Last-solution cache keyed by var-table row identity.
///
/// Solver variables are recreated from scratch on every solve, so values
/// cannot be carried by variable id; they are keyed by (var table, regular
/// key columns) instead, which survives churn in the forall set. A binding
/// that leaves the forall set (e.g. a VM below the CPU filter) keeps its
/// last decision and re-warms if it returns — but only for
/// `max_idle_solves` solves, after which it is evicted so long-running
/// instances with churning keys stay bounded.
struct WarmStartCache {
  struct Entry {
    std::vector<int64_t> values;  ///< Solver-cell values in column order.
    uint64_t last_used = 0;       ///< Generation of the last hit/refresh.
  };
  /// var table -> (regular-column key row -> cached entry).
  std::map<std::string, std::map<Row, Entry>> rows;
  /// Bumped once per cache-refreshing solve.
  uint64_t generation = 0;
  /// Evict entries unseen for this many solves (0 = keep forever).
  uint64_t max_idle_solves = 256;

  bool empty() const { return rows.empty(); }
  void clear() { rows.clear(); }
};

/// Result of one invokeSolver execution.
struct SolveOutput {
  solver::SolveStatus status = solver::SolveStatus::kUnknown;
  solver::Backend backend = solver::Backend::kBranchAndBound;
  uint64_t seed = 0;
  /// True when at least one cached value warm-started the search.
  bool warm_started = false;
  solver::SolveStats stats;
  /// Concrete contents of every solver output table (var tables, derived
  /// solver tables, goal table) under the best solution found.
  std::map<std::string, std::vector<Row>> tables;
  /// Concrete goal value (e.g. the true CPU stdev for a STDEV goal — the
  /// integer search objective is a monotone surrogate).
  double objective = 0;
  bool has_objective = false;
  size_t model_vars = 0;
  size_t model_propagators = 0;
  size_t model_memory_bytes = 0;
  /// Decision groups marked for a batched solve (0 = ungrouped).
  size_t model_groups = 0;
  /// Per-group provenance (SolveOptions::record_provenance); empty when
  /// recording is off or no solution was found. An ungrouped solve reports
  /// one group with an empty key covering every decision variable.
  std::vector<SolveProvGroup> provenance;

  bool has_solution() const {
    return status == solver::SolveStatus::kOptimal ||
           status == solver::SolveStatus::kFeasible;
  }
};

/// \brief Executes the solver-side of a compiled Colog program against the
/// current state of a Datalog engine.
///
/// Stateless across calls: each Solve builds a fresh model, so it can run
/// once per periodic trigger or table-update event.
class SolverBridge {
 public:
  SolverBridge(const colog::CompiledProgram* program, datalog::Engine* engine)
      : program_(program), engine_(engine) {}

  /// Run one complete COP execution. Returns an error Status only for
  /// program-level failures (malformed model); an infeasible or timed-out
  /// search is reported through SolveOutput::status.
  ///
  /// When `warm_cache` is non-null and options.warm_start is set, the cached
  /// previous solution seeds the search and the cache is refreshed with the
  /// new solution afterwards (the cross-solve warm-start loop).
  Result<SolveOutput> Solve(const SolveOptions& options,
                            WarmStartCache* warm_cache = nullptr) const;

  /// Batched entry point: one model solve covering several negotiation
  /// units at once (a node's incident links aggregated per round instead of
  /// one solve per link). Identical to Solve except that var-table rows are
  /// partitioned into decision groups by the first `group_key_prefix`
  /// regular key columns, so group-aware backends (lns / parallel_lns)
  /// relax per-unit neighborhoods and concurrent workers spread across the
  /// batch.
  Result<SolveOutput> SolveBatched(const SolveOptions& options,
                                   int group_key_prefix,
                                   WarmStartCache* warm_cache = nullptr) const {
    SolveOptions o = options;
    o.group_key_prefix = group_key_prefix;
    return Solve(o, warm_cache);
  }

 private:
  const colog::CompiledProgram* program_;
  datalog::Engine* engine_;
};

}  // namespace cologne::runtime

#endif  // COLOGNE_RUNTIME_SOLVER_BRIDGE_H_

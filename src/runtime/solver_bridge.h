// The solver bridge: Cologne's integration of the Datalog engine with the
// constraint solver (paper Sections 5.3-5.4).
//
// At each invokeSolver event the bridge
//   1. instantiates solver variables for every `var` table row (bounded by
//      the current contents of the `forall` table),
//   2. evaluates solver *derivation* rules bottom-up over engine tables and
//      bridge-local solver tables, turning selection/aggregation expressions
//      over solver attributes into constraint-network nodes,
//   3. evaluates solver *constraint* rules, posting hard constraints,
//   4. runs branch-and-bound under the goal, and
//   5. re-evaluates the derivation rules concretely under the solution so the
//      optimization output can be materialized back into engine tables
//      (triggering downstream incremental evaluation, Section 5.1).
#ifndef COLOGNE_RUNTIME_SOLVER_BRIDGE_H_
#define COLOGNE_RUNTIME_SOLVER_BRIDGE_H_

#include <map>
#include <string>
#include <vector>

#include "colog/planner.h"
#include "common/status.h"
#include "datalog/engine.h"
#include "runtime/trace_replay.h"
#include "solver/model.h"

namespace cologne::runtime {

/// Per-solve knobs (the paper's SOLVER_MAX_TIME plus this implementation's
/// backend knobs; see colog::SolverKnobsIR for the in-language spellings).
struct SolveOptions {
  double time_limit_ms = 10'000;
  uint64_t node_limit = 0;
  /// Search strategy (SOLVER_BACKEND).
  solver::Backend backend = solver::Backend::kBranchAndBound;
  /// Seed for randomized search decisions (SOLVER_SEED).
  uint64_t seed = 0x10C5;
  /// Luby restart base for branch-and-bound, in nodes (SOLVER_RESTARTS);
  /// 0 disables restarts.
  uint64_t restart_base_nodes = 0;
  /// Worker threads for the concurrent backends (SOLVER_WORKERS): portfolio
  /// race width / parallel-LNS walk count. Sequential backends ignore it.
  int num_workers = 1;
  /// Cap on backend improvement iterations; 0 = until the time budget.
  uint64_t max_iterations = 0;
  /// Batched-solve variable grouping: when > 0, var-table rows whose first
  /// `group_key_prefix` regular key columns agree form one decision group
  /// in the model (e.g. prefix 2 on migVm(X,Y,D,R) groups per (X,Y) link).
  /// Group-aware backends relax whole groups as LNS neighborhoods; 0
  /// disables grouping. See SolverBridge::SolveBatched.
  int group_key_prefix = 0;
  /// Feed the previous solution of this program back into the next solve as
  /// a warm-start hint (the recurring invokeSolver loop of Section 4.2
  /// usually re-solves a near-identical model).
  bool warm_start = true;
  /// Record per-decision-group solve provenance (binding constraints at the
  /// incumbent, value-source classification) into SolveOutput::provenance.
  /// Enabled by the runtime when OBS_METRICS is on; off by default so the
  /// pre-observability solve path (and its traces) is untouched.
  bool record_provenance = false;
  /// Incremental re-solve on fact deltas (SOLVER_INCREMENTAL): fingerprint
  /// the compiled model per decision group, compare against the previous
  /// solve, pin the clean groups to the cached incumbent and focus search on
  /// the dirty ones. Off by default; with it off the solve path (and its
  /// traces) is byte-identical to the cold solver.
  bool incremental = false;
  /// Staleness threshold of the incremental path (SOLVER_INCR_THRESHOLD):
  /// fall back to a cold solve when strictly more than this percentage of
  /// decision groups changed fingerprint. 0 = any change falls back;
  /// 100 = never fall back on account of volume.
  int incr_threshold_pct = 50;
  /// Context cache of exhausted-subtree proofs (SOLVER_CACHE): keyed on the
  /// fixed decision prefix, namespaced by the model fingerprint, and —
  /// because the Instance owns the cache — persisted across solves, LNS
  /// neighborhoods, and incremental re-solves. A fact delta that changes any
  /// group fingerprint changes the namespace, retiring stale proofs without
  /// a sweep. Off by default: with it off the solve path (and its traces) is
  /// byte-identical to the cache-free solver.
  bool cache = false;
  /// Subproblem-parallel B&B (SOLVER_SUBPROBLEMS): with a concurrent backend
  /// and more than one worker, expand the root into about this many bounded
  /// subproblems that workers steal from a shared queue instead of
  /// re-searching from the root. 0 disables.
  int subproblems = 0;
  /// Legacy untyped-FIFO propagation (SOLVER_NAIVE_PROPAGATION): every
  /// domain change wakes every watcher, linear sums are recomputed from
  /// scratch, entailed propagators keep running. The fixpoints — and hence
  /// the search tree and every solution trace — are identical to the
  /// event-typed engine; only the `solve.propagations`-family effort
  /// metrics differ. Kept as the reference mode for the confluence sweep
  /// and the CI propagation-ratio gate.
  bool naive_propagation = false;
};

/// How Instance::Solve runs (SolveRequest::mode).
enum class SolveMode : uint8_t {
  kFull,         ///< One ungrouped model over every var-table row.
  kBatched,      ///< Var rows grouped by key prefix (per-link neighborhoods).
  kIncremental,  ///< kBatched + the fact-delta fingerprint path, regardless
                 ///< of the SOLVER_INCREMENTAL knob.
};

/// \brief One solve request — the single entry point Instance::Solve takes
/// (collapsing the historical InvokeSolver / InvokeSolverBatched pair).
struct SolveRequest {
  SolveMode mode = SolveMode::kFull;
  /// Decision-group key prefix for kBatched/kIncremental (see
  /// SolveOptions::group_key_prefix); ignored for kFull.
  int group_key_prefix = 0;
  /// Advisory delta hint: base-fact tables touched since the previous solve
  /// (Instance::touched_tables() tracks them from the journal). Purely
  /// informational — fingerprints stay authoritative, because deltas
  /// arriving over the network bypass the local journal entirely.
  std::vector<std::string> changed_tables;
};

/// Apply a compiled program's `param SOLVER_*` knobs on top of `base`.
/// Knobs the program does not set keep their `base` values.
SolveOptions ResolveSolveOptions(const colog::CompiledProgram& program,
                                 SolveOptions base);

/// Engine tables whose contents determine the compiled model: every table a
/// solver rule references (bodies and heads — heads included because in a
/// distributed program a remote node's writeback can land deltas in a table
/// this node also derives), the var/forall tables, and the goal table.
/// Sorted and deduplicated. Hashing exactly these across solves
/// (IncrementalState::input_hashes) proves the model build would repeat.
std::vector<std::string> SolverInputTables(const colog::CompiledProgram& program);

/// \brief Last-solution cache keyed by var-table row identity.
///
/// Solver variables are recreated from scratch on every solve, so values
/// cannot be carried by variable id; they are keyed by (var table, regular
/// key columns) instead, which survives churn in the forall set. A binding
/// that leaves the forall set (e.g. a VM below the CPU filter) keeps its
/// last decision and re-warms if it returns — but only for
/// `max_idle_solves` solves, after which it is evicted so long-running
/// instances with churning keys stay bounded.
struct WarmStartCache {
  struct Entry {
    std::vector<int64_t> values;  ///< Solver-cell values in column order.
    uint64_t last_used = 0;       ///< Generation of the last hit/refresh.
  };
  /// var table -> (regular-column key row -> cached entry).
  std::map<std::string, std::map<Row, Entry>> rows;
  /// Bumped once per cache-refreshing solve.
  uint64_t generation = 0;
  /// Evict entries unseen for this many solves (0 = keep forever).
  uint64_t max_idle_solves = 256;

  bool empty() const { return rows.empty(); }
  void clear() { rows.clear(); }
};

/// Result of one invokeSolver execution.
struct SolveOutput {
  solver::SolveStatus status = solver::SolveStatus::kUnknown;
  solver::Backend backend = solver::Backend::kBranchAndBound;
  uint64_t seed = 0;
  /// True when at least one cached value warm-started the search.
  bool warm_started = false;
  solver::SolveStats stats;
  /// Concrete contents of every solver output table (var tables, derived
  /// solver tables, goal table) under the best solution found.
  std::map<std::string, std::vector<Row>> tables;
  /// Concrete goal value (e.g. the true CPU stdev for a STDEV goal — the
  /// integer search objective is a monotone surrogate).
  double objective = 0;
  bool has_objective = false;
  size_t model_vars = 0;
  size_t model_propagators = 0;
  size_t model_memory_bytes = 0;
  /// Decision groups marked for a batched solve (0 = ungrouped).
  size_t model_groups = 0;
  /// Per-group provenance (SolveOptions::record_provenance); empty when
  /// recording is off or no solution was found. An ungrouped solve reports
  /// one group with an empty key covering every decision variable.
  std::vector<SolveProvGroup> provenance;
  /// Incremental classification of this solve; -1/-1/false when the
  /// incremental path was off. `incr_fallback` means the delta path bailed
  /// to a cold solve (no prior fingerprints, no warm incumbent, or more
  /// than incr_threshold_pct of the groups dirty).
  int incr_dirty = -1;
  int incr_clean = -1;
  bool incr_fallback = false;
  /// True when this output was served from IncrementalState::last_output
  /// because every input table's content hash matched the previous solve
  /// (model build, search, and writeback all skipped).
  bool incr_reused = false;

  bool has_solution() const {
    return status == solver::SolveStatus::kOptimal ||
           status == solver::SolveStatus::kFeasible;
  }
};

/// \brief Cross-solve fingerprint state of the incremental path.
///
/// One 64-bit fingerprint per decision group, folded over the group's
/// var-table rows (table, key, initial domains), every propagator watching
/// one of its variables (propagator debug forms carry the variable ids and
/// every constant the Colog rules baked in, so a changed base fact changes
/// the hash), and a model-global component (group-coupling propagators, the
/// objective) mixed into every group. Comparing against the previous solve's
/// map classifies groups clean/dirty. Cleared whenever the warm-start cache
/// is — the incumbent the clean groups pin to lives there.
struct IncrementalState {
  /// Decision-group key ("2" / "1,3"; "" for an ungrouped model) -> fp.
  std::map<std::string, uint64_t> fingerprints;
  /// False until a cache-refreshing solve stores fingerprints; a compare
  /// against an invalid state always falls back to a cold solve.
  bool valid = false;

  /// Whole-solve reuse (the dominant steady-state case): content hashes of
  /// every engine table the model build reads, snapshotted after the last
  /// solve's writeback, plus that solve's full output. When the next
  /// incremental solve sees identical input hashes (and identical solve
  /// knobs, captured in `reuse_options_key`), the model build, search, and
  /// writeback are all skipped and `last_output` is returned as-is — the
  /// deterministic pipeline would reproduce it bit for bit. Content hashes
  /// are order-independent (datalog::Table::ContentHash), so journal replay
  /// after a crash converges to the same snapshot.
  std::map<std::string, uint64_t> input_hashes;
  uint64_t reuse_options_key = 0;
  SolveOutput last_output;
  bool reusable = false;

  void clear() {
    fingerprints.clear();
    valid = false;
    input_hashes.clear();
    reuse_options_key = 0;
    last_output = SolveOutput{};
    reusable = false;
  }
};

/// \brief Executes the solver-side of a compiled Colog program against the
/// current state of a Datalog engine.
///
/// Stateless across calls: each Solve builds a fresh model, so it can run
/// once per periodic trigger or table-update event.
class SolverBridge {
 public:
  SolverBridge(const colog::CompiledProgram* program, datalog::Engine* engine)
      : program_(program), engine_(engine) {}

  /// Run one complete COP execution. Returns an error Status only for
  /// program-level failures (malformed model); an infeasible or timed-out
  /// search is reported through SolveOutput::status.
  ///
  /// When `warm_cache` is non-null and options.warm_start is set, the cached
  /// previous solution seeds the search and the cache is refreshed with the
  /// new solution afterwards (the cross-solve warm-start loop).
  ///
  /// When `incr` is non-null and options.incremental is set, the compiled
  /// model is fingerprinted per decision group and compared against `incr`:
  /// clean groups stay pinned to the warm-start incumbent while search
  /// focuses on the dirty ones, falling back to a cold solve past the
  /// staleness threshold. `incr` refreshes exactly when the warm cache does
  /// (the fingerprints describe the model whose solution the cache holds).
  ///
  /// When `ctx_cache` is non-null and options.cache is set, the solver keeps
  /// exhausted-subtree proofs in it across solves; the bridge re-keys it
  /// with the current model fingerprint before each search, so entries from
  /// a model a fact delta invalidated can never match.
  Result<SolveOutput> Solve(const SolveOptions& options,
                            WarmStartCache* warm_cache = nullptr,
                            IncrementalState* incr = nullptr,
                            solver::ContextCache* ctx_cache = nullptr) const;

  /// Batched entry point: one model solve covering several negotiation
  /// units at once (a node's incident links aggregated per round instead of
  /// one solve per link). Identical to Solve except that var-table rows are
  /// partitioned into decision groups by the first `group_key_prefix`
  /// regular key columns, so group-aware backends (lns / parallel_lns)
  /// relax per-unit neighborhoods and concurrent workers spread across the
  /// batch.
  Result<SolveOutput> SolveBatched(const SolveOptions& options,
                                   int group_key_prefix,
                                   WarmStartCache* warm_cache = nullptr,
                                   IncrementalState* incr = nullptr,
                                   solver::ContextCache* ctx_cache =
                                       nullptr) const {
    SolveOptions o = options;
    o.group_key_prefix = group_key_prefix;
    return Solve(o, warm_cache, incr, ctx_cache);
  }

 private:
  const colog::CompiledProgram* program_;
  datalog::Engine* engine_;
};

}  // namespace cologne::runtime

#endif  // COLOGNE_RUNTIME_SOLVER_BRIDGE_H_

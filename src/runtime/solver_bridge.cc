#include "runtime/solver_bridge.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <string_view>

#include "common/logging.h"
#include "common/strings.h"
#include "datalog/aggregates.h"
#include "solver/context_cache.h"

namespace cologne::runtime {

namespace {

using colog::CompiledProgram;
using colog::GoalType;
using colog::SolverRuleIR;
using colog::VarDeclIR;
using datalog::AggKind;
using datalog::AtomIR;
using datalog::Expr;
using datalog::ExprOp;
using datalog::RuleIR;
using datalog::TermIR;
using solver::IntVar;
using solver::LinExpr;
using solver::Model;
using solver::Rel;

Rel RelOfOp(ExprOp op) {
  switch (op) {
    case ExprOp::kEq: return Rel::kEq;
    case ExprOp::kNe: return Rel::kNe;
    case ExprOp::kLt: return Rel::kLt;
    case ExprOp::kLe: return Rel::kLe;
    case ExprOp::kGt: return Rel::kGt;
    case ExprOp::kGe: return Rel::kGe;
    default: return Rel::kEq;
  }
}

// One hard constraint posted on behalf of a Colog rule, kept for provenance:
// re-evaluating lhs/rhs under the incumbent tells whether the constraint was
// binding (zero slack) there. Structural constraints the bridge posts for
// aggregate encodings (MIN/MAX exactness ORs) are deliberately not recorded —
// they carry no user-facing rule identity.
struct PostedConstraint {
  std::string label;  // originating rule label
  LinExpr lhs;
  Rel rel;
  LinExpr rhs;
};

// A value during solver-rule evaluation: concrete or an affine expression
// over model variables.
struct SVal {
  bool symbolic = false;
  Value concrete;  // valid when !symbolic
  LinExpr expr;    // valid when symbolic

  static SVal Concrete(Value v) {
    SVal s;
    s.concrete = std::move(v);
    return s;
  }
  static SVal Sym(LinExpr e) {
    SVal s;
    s.symbolic = true;
    s.expr = std::move(e);
    return s;
  }
  // Concrete int -> LinExpr constant; symbolic -> its expression.
  Result<LinExpr> AsExpr() const {
    if (symbolic) return expr;
    if (!concrete.is_int()) {
      return Status::SolverError(
          "expected integer in symbolic context, got " + concrete.ToString());
    }
    return LinExpr(concrete.as_int());
  }
};

// Evaluation context for one Solve() pass.
//
// In symbolic mode, solver attributes are affine expressions registered in
// `sym_exprs` and referenced from rows via Value::Sym(index). In concrete
// mode (the post-solution pass), every cell is a plain value and aggregates
// use the engine's concrete aggregate functions (so STDEV etc. are exact).
class BridgeEval {
 public:
  BridgeEval(const CompiledProgram* program, datalog::Engine* engine,
             Model* model /* nullptr => concrete mode */)
      : program_(program), engine_(engine), model_(model) {}

  bool symbolic() const { return model_ != nullptr; }

  std::map<std::string, std::vector<Row>>& tables() { return tables_; }

  /// One instantiated var-table row: its regular-column key plus the solver
  /// variables created for its solver cells, in column order. This is the
  /// identity the warm-start cache is keyed by.
  struct VarRow {
    const std::string* table;
    Row key;
    std::vector<IntVar> vars;
  };
  const std::vector<VarRow>& var_rows() const { return var_rows_; }

  // ---- Variable instantiation (symbolic mode) -----------------------------
  Status InstantiateVars(std::vector<std::pair<IntVar, Value*>>* var_cells) {
    for (const VarDeclIR& decl : program_->var_decls) {
      const datalog::Table* forall = engine_->GetTable(decl.forall_table);
      if (forall == nullptr) {
        return Status::SolverError("forall table missing: " +
                                   decl.forall_table);
      }
      std::set<Row> seen;  // dedupe identical regular projections
      auto& out = tables_[decl.var_table];
      for (const Row& frow : forall->Rows()) {
        Row key;
        for (int src : decl.from_forall_col) {
          if (src >= 0) key.push_back(frow[static_cast<size_t>(src)]);
        }
        if (!seen.insert(key).second) continue;
        Row row;
        row.reserve(decl.from_forall_col.size());
        VarRow vrow;
        vrow.table = &decl.var_table;
        vrow.key = key;
        for (int src : decl.from_forall_col) {
          if (src >= 0) {
            row.push_back(frow[static_cast<size_t>(src)]);
          } else {
            IntVar v = model_->NewInt(decl.dom_lo, decl.dom_hi);
            model_->MarkDecision(v);
            vrow.vars.push_back(v);
            row.push_back(Value::Sym(Register(LinExpr(v))));
          }
        }
        var_rows_.push_back(std::move(vrow));
        out.push_back(std::move(row));
      }
      if (var_cells != nullptr) {
        for (Row& row : out) {
          for (Value& cell : row) {
            if (cell.is_sym()) {
              const LinExpr& e = sym_exprs_[static_cast<size_t>(cell.sym_index())];
              // Freshly created: single 1*v term.
              var_cells->push_back({e.terms[0].second, &cell});
            }
          }
        }
      }
    }
    return Status::OK();
  }

  // Concrete mode: seed the var tables with already-substituted rows.
  void SeedTable(const std::string& name, std::vector<Row> rows) {
    tables_[name] = std::move(rows);
  }

  // ---- Rule evaluation ------------------------------------------------------
  Status EvalRule(const SolverRuleIR& srule) {
    const RuleIR& rule = srule.ir;
    if (srule.is_constraint && !symbolic()) return Status::OK();

    cur_rule_ = &rule;
    cur_constraint_ = srule.is_constraint;
    agg_groups_.clear();

    std::vector<Value> slots(static_cast<size_t>(rule.num_slots));
    std::vector<char> guards_done(rule.sels.size() + rule.assigns.size(), 0);

    if (srule.is_constraint) {
      // Head is a pattern over an existing table: every row must satisfy the
      // body.
      std::vector<Row> head_rows = RowsOf(rule.head.table);
      for (const Row& hrow : head_rows) {
        std::vector<Value> s = slots;
        std::vector<char> g = guards_done;
        std::vector<int> bound;
        COLOGNE_ASSIGN_OR_RETURN(ok, MatchAtom(rule.head, hrow, s, &bound));
        if (!ok) continue;
        COLOGNE_RETURN_IF_ERROR(JoinBody(rule, 0, s, g, nullptr));
      }
      return Status::OK();
    }

    // Derivation rule: full join over the body, emitting head rows.
    std::vector<Row> emitted;
    COLOGNE_RETURN_IF_ERROR(JoinBody(rule, 0, slots, guards_done, &emitted));
    auto& out = tables_[rule.head.table];

    if (rule.agg) {
      // `emitted` holds group rows; aggregate per group.
      int agg_pos = rule.agg->arg_index;
      for (auto& [group, vals] : agg_groups_) {
        COLOGNE_ASSIGN_OR_RETURN(agg_val, Aggregate(rule.agg->kind, vals));
        Row row;
        size_t g = 0;
        for (size_t i = 0; i <= group.size(); ++i) {
          if (static_cast<int>(i) == agg_pos) {
            row.push_back(agg_val);
          } else {
            row.push_back(group[g++]);
          }
        }
        out.push_back(std::move(row));
      }
    } else {
      for (Row& r : emitted) out.push_back(std::move(r));
    }
    return Status::OK();
  }

  // ---- Goal -----------------------------------------------------------------
  // Returns a concrete 0 when the goal table is empty (no cost terms apply:
  // e.g. the first wireless link negotiation before any neighbor has chosen
  // a channel) — the solve then degrades to pure satisfaction.
  Result<SVal> GoalValue() {
    const auto& goal = program_->goal;
    std::vector<Row> rows = RowsOf(goal.table);
    if (rows.empty()) {
      return SVal::Concrete(Value::Int(0));
    }
    if (rows.size() > 1) {
      return Status::SolverError(
          StrFormat("goal table %s has %zu rows; expected a single row",
                    goal.table.c_str(), rows.size()));
    }
    return ToSVal(rows[0][static_cast<size_t>(goal.col)]);
  }

  const LinExpr& SymExpr(int32_t idx) const {
    return sym_exprs_[static_cast<size_t>(idx)];
  }

  /// Mirror every rule-originated PostRel into `out` (provenance recording).
  void RecordConstraintsTo(std::vector<PostedConstraint>* out) {
    record_ = out;
  }

 private:
  // Rows of a table: bridge-local solver table first, engine table otherwise.
  std::vector<Row> RowsOf(const std::string& name) {
    auto it = tables_.find(name);
    if (it != tables_.end()) return it->second;
    const datalog::Table* t = engine_->GetTable(name);
    if (t == nullptr) return {};
    return t->Rows();
  }

  int32_t Register(LinExpr e) {
    sym_exprs_.push_back(std::move(e));
    return static_cast<int32_t>(sym_exprs_.size() - 1);
  }

  Result<SVal> ToSVal(const Value& v) {
    if (v.is_sym()) return SVal::Sym(sym_exprs_[static_cast<size_t>(v.sym_index())]);
    return SVal::Concrete(v);
  }

  Value FromSVal(const SVal& s) {
    if (!s.symbolic) return s.concrete;
    return Value::Sym(Register(s.expr));
  }

  void RecordPost(const LinExpr& lhs, Rel rel, const LinExpr& rhs) {
    if (record_ == nullptr || cur_rule_ == nullptr) return;
    record_->push_back({cur_rule_->label, lhs, rel, rhs});
  }

  // ---- Atom matching --------------------------------------------------------
  // Returns false (no error) when the row does not match. Symbolic cells
  // unify: in constraint rules a clash posts an equality constraint; in
  // derivation rules it is an error (joins on solver attributes are
  // disallowed, Section 5.3).
  Result<bool> MatchAtom(const AtomIR& atom, const Row& row,
                         std::vector<Value>& slots, std::vector<int>* bound) {
    for (size_t i = 0; i < atom.args.size(); ++i) {
      const TermIR& term = atom.args[i];
      const Value& v = row[i];
      const Value* test = nullptr;
      if (term.is_const) {
        test = &term.const_val;
      } else {
        Value& s = slots[static_cast<size_t>(term.slot)];
        if (s.is_null()) {
          s = v;
          if (bound) bound->push_back(term.slot);
          continue;
        }
        test = &s;
      }
      if (*test == v) continue;
      if (test->is_sym() || v.is_sym()) {
        if (!cur_constraint_) {
          return Status::SolverError(
              "rule " + cur_rule_->label +
              ": join on a solver attribute is not supported");
        }
        COLOGNE_ASSIGN_OR_RETURN(a, ToSVal(*test));
        COLOGNE_ASSIGN_OR_RETURN(b, ToSVal(v));
        COLOGNE_ASSIGN_OR_RETURN(ea, a.AsExpr());
        COLOGNE_ASSIGN_OR_RETURN(eb, b.AsExpr());
        model_->PostRel(ea, Rel::kEq, eb);
        RecordPost(ea, Rel::kEq, eb);
        continue;
      }
      return false;
    }
    return true;
  }

  // ---- Body join ------------------------------------------------------------
  Status JoinBody(const RuleIR& rule, size_t depth, std::vector<Value>& slots,
                  std::vector<char>& guards_done, std::vector<Row>* emitted) {
    COLOGNE_ASSIGN_OR_RETURN(alive, RunGuards(rule, slots, guards_done));
    if (!alive) return Status::OK();
    if (depth == rule.body.size()) {
      return Emit(rule, slots, emitted);
    }
    const AtomIR& atom = rule.body[depth];
    std::vector<Row> rows = RowsOf(atom.table);
    for (const Row& row : rows) {
      std::vector<Value> s = slots;
      std::vector<char> g = guards_done;
      COLOGNE_ASSIGN_OR_RETURN(ok, MatchAtom(atom, row, s, nullptr));
      if (!ok) continue;
      COLOGNE_RETURN_IF_ERROR(JoinBody(rule, depth + 1, s, g, emitted));
    }
    return Status::OK();
  }

  // Run ready guards; Result<false> = a selection filtered this branch out.
  Result<bool> RunGuards(const RuleIR& rule, std::vector<Value>& slots,
                         std::vector<char>& done) {
    bool progress = true;
    while (progress) {
      progress = false;
      for (size_t i = 0; i < rule.sels.size(); ++i) {
        if (done[i]) continue;
        COLOGNE_ASSIGN_OR_RETURN(state, TrySelection(rule.sels[i].expr, slots));
        if (state == GuardState::kNotReady) continue;
        if (state == GuardState::kFailed) return false;
        done[i] = 1;
        progress = true;
      }
      for (size_t i = 0; i < rule.assigns.size(); ++i) {
        size_t gi = rule.sels.size() + i;
        if (done[gi]) continue;
        const auto& as = rule.assigns[i];
        if (!Ready(as.expr, slots)) continue;
        COLOGNE_ASSIGN_OR_RETURN(v, Eval(as.expr, slots));
        Value& target = slots[static_cast<size_t>(as.slot)];
        Value newv = FromSVal(v);
        if (target.is_null()) {
          target = newv;
        } else if (!(target == newv)) {
          return false;
        }
        done[gi] = 1;
        progress = true;
      }
    }
    return true;
  }

  enum class GuardState { kNotReady, kPassed, kFailed };

  static bool Ready(const Expr& e, const std::vector<Value>& slots) {
    std::vector<int> deps;
    e.CollectSlots(&deps);
    for (int d : deps) {
      if (slots[static_cast<size_t>(d)].is_null()) return false;
    }
    return true;
  }

  // Collect unbound slots of an expression.
  static void UnboundSlots(const Expr& e, const std::vector<Value>& slots,
                           std::vector<int>* out) {
    std::vector<int> deps;
    e.CollectSlots(&deps);
    for (int d : deps) {
      if (slots[static_cast<size_t>(d)].is_null()) out->push_back(d);
    }
  }

  // Selection handling with the binding forms of Section 5.3:
  //   X == expr                (X unbound)    bind X to the expression
  //   (X == k) == boolexpr     (X unbound)    bind X := k * [boolexpr]
  //   boolexpr == (X == k)     symmetric
  // plus plain filtering / hard-constraint posting.
  Result<GuardState> TrySelection(const Expr& e, std::vector<Value>& slots) {
    if (e.op == ExprOp::kEq) {
      const Expr& l = e.kids[0];
      const Expr& r = e.kids[1];
      // Form 1: bare unbound slot on one side.
      for (int side = 0; side < 2; ++side) {
        const Expr& a = side == 0 ? l : r;
        const Expr& b = side == 0 ? r : l;
        if (a.op == ExprOp::kSlot &&
            slots[static_cast<size_t>(a.slot)].is_null()) {
          if (!Ready(b, slots)) return GuardState::kNotReady;
          COLOGNE_ASSIGN_OR_RETURN(v, Eval(b, slots));
          slots[static_cast<size_t>(a.slot)] = FromSVal(v);
          return GuardState::kPassed;
        }
      }
      // Form 2: (X == k) == boolexpr with X unbound.
      for (int side = 0; side < 2; ++side) {
        const Expr& pat = side == 0 ? l : r;
        const Expr& other = side == 0 ? r : l;
        if (pat.op != ExprOp::kEq) continue;
        const Expr* slot_kid = nullptr;
        const Expr* const_kid = nullptr;
        for (int k = 0; k < 2; ++k) {
          const Expr& kid = pat.kids[static_cast<size_t>(k)];
          const Expr& sib = pat.kids[static_cast<size_t>(1 - k)];
          if (kid.op == ExprOp::kSlot &&
              slots[static_cast<size_t>(kid.slot)].is_null()) {
            slot_kid = &kid;
            const_kid = &sib;
          }
        }
        if (slot_kid == nullptr) continue;
        if (const_kid->op != ExprOp::kConst || !const_kid->const_val.is_int()) {
          continue;
        }
        if (!Ready(other, slots)) return GuardState::kNotReady;
        int64_t k = const_kid->const_val.as_int();
        COLOGNE_ASSIGN_OR_RETURN(cond, Eval(other, slots));
        Value bound;
        if (cond.symbolic) {
          LinExpr scaled = cond.expr;
          scaled.MulBy(k);
          bound = Value::Sym(Register(std::move(scaled)));
        } else {
          bound = Value::Int(datalog::ValueIsTrue(cond.concrete) ? k : 0);
        }
        slots[static_cast<size_t>(slot_kid->slot)] = bound;
        return GuardState::kPassed;
      }
    }
    // Plain evaluation: not ready / filter / hard constraint.
    if (!Ready(e, slots)) return GuardState::kNotReady;
    return EvalCondition(e, slots);
  }

  // Evaluate a fully-bound boolean condition. Concrete: filter. Symbolic:
  // post a hard constraint (selections in solver rules restrict the search
  // space, Sections 5.3-5.4) and keep the branch alive.
  Result<GuardState> EvalCondition(const Expr& e, std::vector<Value>& slots) {
    if (datalog::IsComparison(e.op)) {
      COLOGNE_ASSIGN_OR_RETURN(a, Eval(e.kids[0], slots));
      COLOGNE_ASSIGN_OR_RETURN(b, Eval(e.kids[1], slots));
      if (!a.symbolic && !b.symbolic) {
        Expr probe = Expr::Binary(e.op, Expr::Const(a.concrete),
                                  Expr::Const(b.concrete));
        COLOGNE_ASSIGN_OR_RETURN(v, datalog::EvalExpr(probe, {}));
        return datalog::ValueIsTrue(v) ? GuardState::kPassed
                                       : GuardState::kFailed;
      }
      COLOGNE_ASSIGN_OR_RETURN(ea, a.AsExpr());
      COLOGNE_ASSIGN_OR_RETURN(eb, b.AsExpr());
      model_->PostRel(ea, RelOfOp(e.op), eb);
      RecordPost(ea, RelOfOp(e.op), eb);
      return GuardState::kPassed;
    }
    if (e.op == ExprOp::kAnd) {
      COLOGNE_ASSIGN_OR_RETURN(a, EvalCondition(e.kids[0], slots));
      if (a == GuardState::kFailed) return a;
      return EvalCondition(e.kids[1], slots);
    }
    COLOGNE_ASSIGN_OR_RETURN(v, Eval(e, slots));
    if (!v.symbolic) {
      return datalog::ValueIsTrue(v.concrete) ? GuardState::kPassed
                                              : GuardState::kFailed;
    }
    model_->PostRel(v.expr, Rel::kEq, LinExpr(1));
    RecordPost(v.expr, Rel::kEq, LinExpr(1));
    return GuardState::kPassed;
  }

  // ---- Expression evaluation (symbolic-aware) -------------------------------
  Result<SVal> Eval(const Expr& e, const std::vector<Value>& slots) {
    switch (e.op) {
      case ExprOp::kConst:
        return SVal::Concrete(e.const_val);
      case ExprOp::kSlot:
        return ToSVal(slots[static_cast<size_t>(e.slot)]);
      case ExprOp::kNeg: {
        COLOGNE_ASSIGN_OR_RETURN(a, Eval(e.kids[0], slots));
        if (!a.symbolic) return ConcreteUnary(e.op, a.concrete);
        LinExpr neg = a.expr;
        neg.MulBy(-1);
        return SVal::Sym(std::move(neg));
      }
      case ExprOp::kAbs: {
        COLOGNE_ASSIGN_OR_RETURN(a, Eval(e.kids[0], slots));
        if (!a.symbolic) return ConcreteUnary(e.op, a.concrete);
        return SVal::Sym(LinExpr(model_->MakeAbs(a.expr)));
      }
      case ExprOp::kNot: {
        COLOGNE_ASSIGN_OR_RETURN(a, Eval(e.kids[0], slots));
        if (!a.symbolic) return ConcreteUnary(e.op, a.concrete);
        LinExpr inv(1);
        inv -= a.expr;
        return SVal::Sym(std::move(inv));
      }
      case ExprOp::kAdd:
      case ExprOp::kSub: {
        COLOGNE_ASSIGN_OR_RETURN(a, Eval(e.kids[0], slots));
        COLOGNE_ASSIGN_OR_RETURN(b, Eval(e.kids[1], slots));
        if (!a.symbolic && !b.symbolic) {
          return ConcreteBinary(e.op, a.concrete, b.concrete);
        }
        COLOGNE_ASSIGN_OR_RETURN(ea, a.AsExpr());
        COLOGNE_ASSIGN_OR_RETURN(eb, b.AsExpr());
        if (e.op == ExprOp::kSub) {
          ea -= eb;
        } else {
          ea += eb;
        }
        return SVal::Sym(std::move(ea));
      }
      case ExprOp::kMul: {
        COLOGNE_ASSIGN_OR_RETURN(a, Eval(e.kids[0], slots));
        COLOGNE_ASSIGN_OR_RETURN(b, Eval(e.kids[1], slots));
        if (!a.symbolic && !b.symbolic) {
          return ConcreteBinary(e.op, a.concrete, b.concrete);
        }
        if (!a.symbolic || !b.symbolic) {
          const SVal& sym = a.symbolic ? a : b;
          const SVal& con = a.symbolic ? b : a;
          if (!con.concrete.is_int()) {
            return Status::SolverError(
                "multiplying a solver attribute by a non-integer");
          }
          LinExpr scaled = sym.expr;
          scaled.MulBy(con.concrete.as_int());
          return SVal::Sym(std::move(scaled));
        }
        IntVar va = model_->VarOf(a.expr);
        IntVar vb = model_->VarOf(b.expr);
        return SVal::Sym(LinExpr(model_->MakeTimes(va, vb)));
      }
      case ExprOp::kDiv:
      case ExprOp::kMod: {
        COLOGNE_ASSIGN_OR_RETURN(a, Eval(e.kids[0], slots));
        COLOGNE_ASSIGN_OR_RETURN(b, Eval(e.kids[1], slots));
        if (a.symbolic || b.symbolic) {
          return Status::SolverError(
              "division/modulo over solver attributes is not supported");
        }
        return ConcreteBinary(e.op, a.concrete, b.concrete);
      }
      default: {  // comparisons and logical connectives
        COLOGNE_ASSIGN_OR_RETURN(a, Eval(e.kids[0], slots));
        COLOGNE_ASSIGN_OR_RETURN(b, Eval(e.kids[1], slots));
        if (!a.symbolic && !b.symbolic) {
          return ConcreteBinary(e.op, a.concrete, b.concrete);
        }
        COLOGNE_ASSIGN_OR_RETURN(ea, a.AsExpr());
        COLOGNE_ASSIGN_OR_RETURN(eb, b.AsExpr());
        if (datalog::IsComparison(e.op)) {
          IntVar bvar = model_->ReifyRel(ea, RelOfOp(e.op), eb);
          return SVal::Sym(LinExpr(bvar));
        }
        if (e.op == ExprOp::kAnd) {
          ea += eb;  // both 0/1
          IntVar bvar = model_->ReifyRel(ea, Rel::kEq, LinExpr(2));
          return SVal::Sym(LinExpr(bvar));
        }
        if (e.op == ExprOp::kOr) {
          ea += eb;
          IntVar bvar = model_->ReifyRel(ea, Rel::kGe, LinExpr(1));
          return SVal::Sym(LinExpr(bvar));
        }
        return Status::SolverError("unsupported symbolic operator");
      }
    }
  }

  Result<SVal> ConcreteUnary(ExprOp op, const Value& a) {
    Expr probe = Expr::Unary(op, Expr::Const(a));
    COLOGNE_ASSIGN_OR_RETURN(v, datalog::EvalExpr(probe, {}));
    return SVal::Concrete(std::move(v));
  }
  Result<SVal> ConcreteBinary(ExprOp op, const Value& a, const Value& b) {
    Expr probe = Expr::Binary(op, Expr::Const(a), Expr::Const(b));
    COLOGNE_ASSIGN_OR_RETURN(v, datalog::EvalExpr(probe, {}));
    return SVal::Concrete(std::move(v));
  }

  // ---- Head emission --------------------------------------------------------
  Status Emit(const RuleIR& rule, const std::vector<Value>& slots,
              std::vector<Row>* emitted) {
    if (cur_constraint_) return Status::OK();  // constraints derive nothing
    if (rule.agg) {
      Row group;
      for (size_t i = 0; i < rule.head.args.size(); ++i) {
        if (static_cast<int>(i) == rule.agg->arg_index) continue;
        const TermIR& term = rule.head.args[i];
        Value v = term.is_const ? term.const_val
                                : slots[static_cast<size_t>(term.slot)];
        if (v.is_null()) {
          return Status::SolverError("rule " + rule.label +
                                     ": unbound group-by attribute");
        }
        if (v.is_sym()) {
          return Status::SolverError("rule " + rule.label +
                                     ": symbolic group-by attribute");
        }
        group.push_back(std::move(v));
      }
      const Value& v = slots[static_cast<size_t>(rule.agg->value_slot)];
      if (v.is_null()) {
        return Status::SolverError("rule " + rule.label +
                                   ": unbound aggregate input");
      }
      COLOGNE_ASSIGN_OR_RETURN(sval, ToSVal(v));
      agg_groups_[group].push_back(std::move(sval));
      return Status::OK();
    }
    Row row;
    for (const TermIR& term : rule.head.args) {
      Value v = term.is_const ? term.const_val
                              : slots[static_cast<size_t>(term.slot)];
      if (v.is_null()) {
        return Status::SolverError("rule " + rule.label +
                                   ": unbound head attribute");
      }
      row.push_back(std::move(v));
    }
    emitted->push_back(std::move(row));
    return Status::OK();
  }

  // ---- Aggregates -----------------------------------------------------------
  Result<Value> Aggregate(AggKind kind, const std::vector<SVal>& vals) {
    bool any_sym = false;
    for (const SVal& v : vals) any_sym |= v.symbolic;
    if (!any_sym) {
      std::vector<Value> xs;
      xs.reserve(vals.size());
      for (const SVal& v : vals) xs.push_back(v.concrete);
      return datalog::ComputeAggregate(kind, xs);
    }
    // Symbolic aggregate constructions (Section 5.3).
    switch (kind) {
      case AggKind::kSum: {
        LinExpr sum;
        for (const SVal& v : vals) {
          COLOGNE_ASSIGN_OR_RETURN(e, v.AsExpr());
          sum += e;
        }
        return Value::Sym(Register(std::move(sum)));
      }
      case AggKind::kSumAbs: {
        LinExpr sum;
        for (const SVal& v : vals) {
          COLOGNE_ASSIGN_OR_RETURN(e, v.AsExpr());
          sum += LinExpr(model_->MakeAbs(e));
        }
        return Value::Sym(Register(std::move(sum)));
      }
      case AggKind::kCount:
        return Value::Int(static_cast<int64_t>(vals.size()));
      case AggKind::kStdev: {
        // Integer surrogate: J = sum_i (n*x_i - S)^2 = n^2 * sum (x_i-mean)^2.
        // Minimizing J minimizes the stdev; the true stdev is recomputed
        // concretely after the solve.
        int64_t n = static_cast<int64_t>(vals.size());
        LinExpr total;
        std::vector<LinExpr> exprs;
        for (const SVal& v : vals) {
          COLOGNE_ASSIGN_OR_RETURN(e, v.AsExpr());
          total += e;
          exprs.push_back(std::move(e));
        }
        LinExpr j;
        for (LinExpr& e : exprs) {
          LinExpr dev = e;
          dev.MulBy(n);
          dev -= total;
          j += LinExpr(model_->MakeSquare(dev));
        }
        return Value::Sym(Register(std::move(j)));
      }
      case AggKind::kMin:
      case AggKind::kMax: {
        // m bounded by every input; exactness via an OR of equalities.
        std::vector<LinExpr> exprs;
        solver::ExprBounds overall{0, 0};
        bool first = true;
        for (const SVal& v : vals) {
          COLOGNE_ASSIGN_OR_RETURN(e, v.AsExpr());
          solver::ExprBounds b = model_->InitialBounds(e);
          if (first) {
            overall = b;
            first = false;
          } else {
            overall.min = std::min(overall.min, b.min);
            overall.max = std::max(overall.max, b.max);
          }
          exprs.push_back(std::move(e));
        }
        IntVar m = model_->NewInt(overall.min, overall.max);
        std::vector<IntVar> hits;
        for (const LinExpr& e : exprs) {
          model_->PostRel(LinExpr(m), kind == AggKind::kMax ? Rel::kGe : Rel::kLe,
                          e);
          hits.push_back(model_->ReifyRel(LinExpr(m), Rel::kEq, e));
        }
        IntVar any = model_->MakeOr(std::move(hits));
        model_->PostRel(LinExpr(any), Rel::kEq, LinExpr(1));
        return Value::Sym(Register(LinExpr(m)));
      }
      case AggKind::kUnique: {
        std::vector<IntVar> vars;
        for (const SVal& v : vals) {
          COLOGNE_ASSIGN_OR_RETURN(e, v.AsExpr());
          vars.push_back(model_->VarOf(e));
        }
        return Value::Sym(Register(LinExpr(model_->MakeCountDistinct(vars))));
      }
      case AggKind::kAvg:
        return Status::SolverError(
            "AVG over solver attributes is not supported (use SUM)");
      case AggKind::kNone:
        break;
    }
    return Status::SolverError("unsupported symbolic aggregate");
  }

  const CompiledProgram* program_;
  datalog::Engine* engine_;
  Model* model_;
  std::vector<VarRow> var_rows_;
  std::vector<LinExpr> sym_exprs_;
  std::map<std::string, std::vector<Row>> tables_;
  std::map<Row, std::vector<SVal>> agg_groups_;
  const RuleIR* cur_rule_ = nullptr;
  bool cur_constraint_ = false;
  std::vector<PostedConstraint>* record_ = nullptr;
};

// Evaluate a LinExpr under a solution.
int64_t EvalLin(const LinExpr& e, const solver::Solution& sol) {
  int64_t v = e.constant;
  for (const auto& [c, var] : e.terms) v += c * sol.ValueOf(var);
  return v;
}

// ---- Solve provenance (ISSUE 6) -------------------------------------------

// Zero slack at the incumbent: the constraint holds with equality (for the
// strict relations, the integer gap of exactly one). A satisfied `==` is
// binding by definition; `!=` never is (its feasible set has no boundary a
// solution can sit on).
bool BindingAt(const PostedConstraint& c, const solver::Solution& sol) {
  int64_t l = EvalLin(c.lhs, sol);
  int64_t r = EvalLin(c.rhs, sol);
  switch (c.rel) {
    case Rel::kEq: return l == r;
    case Rel::kNe: return false;
    case Rel::kLe: return l == r;
    case Rel::kLt: return l + 1 == r;
    case Rel::kGe: return l == r;
    case Rel::kGt: return l == r + 1;
  }
  return false;
}

// Render a grouping-prefix row as the provenance group key ("2" / "1,3").
std::string GroupKeyString(const Row& prefix) {
  std::string s;
  for (size_t i = 0; i < prefix.size(); ++i) {
    if (i > 0) s += ",";
    s += prefix[i].ToString();
  }
  return s;
}

// Classify where one decision value came from: its warm-start cache hint, a
// bound of its initial domain (propagation or a B&B objective clamp decided
// it), or the search itself.
const char* SrcOfValue(const Model& model, IntVar v,
                       const std::vector<int64_t>& cache_hints,
                       const solver::Solution& sol) {
  int64_t val = sol.ValueOf(v);
  size_t id = static_cast<size_t>(v.id);
  if (id < cache_hints.size() && cache_hints[id] != Model::Options::kNoHint &&
      cache_hints[id] == val) {
    return "warm";
  }
  const auto& d0 = model.InitialDomain(v);
  if (val == d0.min() || val == d0.max()) return "domain";
  return "search";
}

// Assemble one SolveProvGroup per decision group (or one whole-model group
// for an ungrouped solve): the binding constraints touching any group
// variable, sorted and deduplicated, plus the value-source classification.
std::vector<SolveProvGroup> BuildProvenance(
    const Model& model, const std::vector<BridgeEval::VarRow>& var_rows,
    const std::vector<std::string>& group_keys,
    const std::vector<PostedConstraint>& posted,
    const std::vector<int64_t>& cache_hints, const solver::Solution& sol) {
  // Binding-constraint index per variable.
  std::map<int32_t, std::vector<size_t>> touching;
  for (size_t i = 0; i < posted.size(); ++i) {
    if (!BindingAt(posted[i], sol)) continue;
    for (const auto& [c, v] : posted[i].lhs.terms) touching[v.id].push_back(i);
    for (const auto& [c, v] : posted[i].rhs.terms) touching[v.id].push_back(i);
  }

  std::vector<std::pair<std::string, std::vector<IntVar>>> groups;
  const auto& marked = model.decision_groups();
  if (!marked.empty() && marked.size() == group_keys.size()) {
    for (size_t i = 0; i < marked.size(); ++i) {
      groups.push_back({group_keys[i], marked[i]});
    }
  } else {
    std::vector<IntVar> all;
    for (const BridgeEval::VarRow& vr : var_rows) {
      all.insert(all.end(), vr.vars.begin(), vr.vars.end());
    }
    groups.push_back({std::string(), std::move(all)});
  }

  std::vector<SolveProvGroup> out;
  out.reserve(groups.size());
  for (const auto& [key, vars] : groups) {
    SolveProvGroup g;
    g.key = key;
    std::set<std::string> tight;
    const char* src = nullptr;
    bool mixed = false;
    for (IntVar v : vars) {
      const char* s = SrcOfValue(model, v, cache_hints, sol);
      if (src == nullptr) {
        src = s;
      } else if (std::string_view(src) != s) {
        mixed = true;
      }
      auto it = touching.find(v.id);
      if (it == touching.end()) continue;
      for (size_t ci : it->second) tight.insert(posted[ci].label);
    }
    g.src = src == nullptr ? "search" : (mixed ? "mixed" : src);
    g.tight.assign(tight.begin(), tight.end());
    out.push_back(std::move(g));
  }
  return out;
}

// ---- Incremental fingerprints (ISSUE 7) ------------------------------------

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void FnvMix(uint64_t* h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    *h ^= (v >> (i * 8)) & 0xFF;
    *h *= kFnvPrime;
  }
}

void FnvMixStr(uint64_t* h, std::string_view s) {
  for (unsigned char c : s) {
    *h ^= c;
    *h *= kFnvPrime;
  }
  FnvMix(h, s.size());
}

// One 64-bit fingerprint per decision group (aligned with
// model.decision_groups(); a single entry for an ungrouped model).
//
// The hash covers everything that determines the group's slice of the
// search problem: its var rows (table, key, initial domains), every
// propagator watching one of its variables — Propagator::DebugString()
// renders variable ids and every constant the Colog rules baked into the
// expression, so a changed base fact (a demand, a cost coefficient, a
// neighbor's announced placement) changes the hash of exactly the
// propagators it reached — and a model-global component folded into every
// group: propagators that watch no grouped variable or couple several
// groups (shared capacity sums, objective channeling) plus the objective
// sense/variable. Variable ids are deterministic for a fixed row set; a
// structural change (row added/removed) shifts later ids and conservatively
// dirties the affected groups.
std::vector<uint64_t> ComputeFingerprints(
    const Model& model, const std::vector<BridgeEval::VarRow>& var_rows) {
  const auto& groups = model.decision_groups();
  const size_t ngroups = std::max<size_t>(groups.size(), 1);
  std::vector<int32_t> group_of(model.num_vars(), -1);
  for (size_t gi = 0; gi < groups.size(); ++gi) {
    for (IntVar v : groups[gi]) {
      group_of[static_cast<size_t>(v.id)] = static_cast<int32_t>(gi);
    }
  }

  std::vector<uint64_t> fp(ngroups, kFnvOffset);
  uint64_t global = kFnvOffset;
  auto target_of = [&](int32_t var_id) -> int32_t {
    return group_of[static_cast<size_t>(var_id)];
  };

  for (const BridgeEval::VarRow& vr : var_rows) {
    int32_t gi = vr.vars.empty() ? -1 : target_of(vr.vars[0].id);
    uint64_t* h = gi >= 0 ? &fp[static_cast<size_t>(gi)] : &global;
    FnvMixStr(h, *vr.table);
    for (const Value& k : vr.key) FnvMixStr(h, k.ToString());
    for (IntVar v : vr.vars) {
      const auto& d = model.InitialDomain(v);
      FnvMix(h, static_cast<uint64_t>(v.id));
      FnvMix(h, static_cast<uint64_t>(d.min()));
      FnvMix(h, static_cast<uint64_t>(d.max()));
    }
  }

  std::vector<int32_t> seen;  // distinct groups watched by one propagator
  for (const auto& p : model.propagators()) {
    uint64_t h = kFnvOffset;
    FnvMixStr(&h, p->DebugString());
    seen.clear();
    for (int32_t id : p->watched()) {
      int32_t gi = target_of(id);
      if (gi >= 0 &&
          std::find(seen.begin(), seen.end(), gi) == seen.end()) {
        seen.push_back(gi);
      }
    }
    if (seen.size() == 1) {
      FnvMix(&fp[static_cast<size_t>(seen[0])], h);
    } else {
      // No grouped watcher (pure auxiliary channeling) or a coupling
      // propagator spanning groups: model-global either way.
      FnvMix(&global, h);
    }
  }

  if (model.sense() != solver::Sense::kSatisfy) {
    FnvMix(&global, static_cast<uint64_t>(model.sense()));
    FnvMix(&global, static_cast<uint64_t>(model.objective_var().id));
  }
  for (uint64_t& h : fp) FnvMix(&h, global);
  return fp;
}

}  // namespace

SolveOptions ResolveSolveOptions(const colog::CompiledProgram& program,
                                 SolveOptions base) {
  const colog::SolverKnobsIR& knobs = program.knobs;
  if (knobs.max_time_ms) base.time_limit_ms = *knobs.max_time_ms;
  if (knobs.backend) {
    // The planner already validated the spelling; fall back to B&B anyway.
    solver::Backend b;
    if (solver::ParseBackend(*knobs.backend, &b)) base.backend = b;
  }
  if (knobs.seed) base.seed = *knobs.seed;
  if (knobs.restart_base_nodes) {
    base.restart_base_nodes = *knobs.restart_base_nodes;
  }
  if (knobs.workers) base.num_workers = static_cast<int>(*knobs.workers);
  if (knobs.incremental) base.incremental = *knobs.incremental;
  if (knobs.incr_threshold_pct) {
    base.incr_threshold_pct = static_cast<int>(*knobs.incr_threshold_pct);
  }
  if (knobs.cache) base.cache = *knobs.cache;
  if (knobs.subproblems) {
    base.subproblems = static_cast<int>(*knobs.subproblems);
  }
  if (knobs.naive_propagation) base.naive_propagation = *knobs.naive_propagation;
  return base;
}

std::vector<std::string> SolverInputTables(
    const colog::CompiledProgram& program) {
  std::set<std::string> names;
  for (const colog::SolverRuleIR& rule : program.solver_rules) {
    names.insert(rule.ir.head.table);
    for (const datalog::AtomIR& atom : rule.ir.body) names.insert(atom.table);
  }
  for (const colog::VarDeclIR& decl : program.var_decls) {
    names.insert(decl.var_table);
    names.insert(decl.forall_table);
  }
  if (program.goal.present && !program.goal.table.empty()) {
    names.insert(program.goal.table);
  }
  return {names.begin(), names.end()};
}

Result<SolveOutput> SolverBridge::Solve(const SolveOptions& options,
                                        WarmStartCache* warm_cache,
                                        IncrementalState* incr,
                                        solver::ContextCache* ctx_cache) const {
  SolveOutput out;
  out.backend = options.backend;
  out.seed = options.seed;
  Model model;
  const bool incremental = options.incremental && incr != nullptr;

  // ---- Phase A: build the constraint network --------------------------------
  BridgeEval sym_eval(program_, engine_, &model);
  std::vector<PostedConstraint> posted;
  if (options.record_provenance) sym_eval.RecordConstraintsTo(&posted);
  std::vector<std::pair<IntVar, Value*>> var_cells;
  COLOGNE_RETURN_IF_ERROR(sym_eval.InstantiateVars(&var_cells));

  for (const SolverRuleIR& rule : program_->solver_rules) {
    COLOGNE_RETURN_IF_ERROR(sym_eval.EvalRule(rule));
  }

  bool optimizing = program_->goal.present && !program_->goal.table.empty();
  if (optimizing) {
    COLOGNE_ASSIGN_OR_RETURN(goal_val, sym_eval.GoalValue());
    COLOGNE_ASSIGN_OR_RETURN(goal_expr, goal_val.AsExpr());
    if (program_->goal.type == GoalType::kMinimize) {
      model.Minimize(goal_expr);
    } else if (program_->goal.type == GoalType::kMaximize) {
      model.Maximize(goal_expr);
    }
  }

  // Batched solves: partition the var rows into decision groups by key
  // prefix (one group per negotiation unit, e.g. per link of the batch) so
  // group-aware backends relax per-unit neighborhoods. First-seen order
  // keeps the grouping deterministic.
  std::vector<std::string> group_keys;  // aligned with decision_groups()
  if (options.group_key_prefix > 0) {
    std::vector<std::pair<Row, std::vector<IntVar>>> groups;  // ordered
    std::map<std::pair<std::string, Row>, size_t> index;
    for (const BridgeEval::VarRow& vr : sym_eval.var_rows()) {
      Row prefix(vr.key.begin(),
                 vr.key.begin() +
                     std::min<size_t>(vr.key.size(),
                                      static_cast<size_t>(
                                          options.group_key_prefix)));
      auto [it, inserted] =
          index.try_emplace({*vr.table, prefix}, groups.size());
      if (inserted) groups.push_back({prefix, {}});
      auto& vars = groups[it->second].second;
      vars.insert(vars.end(), vr.vars.begin(), vr.vars.end());
    }
    for (auto& [prefix, vars] : groups) {
      // MarkGroup drops empty groups; keep the keys aligned with the model.
      if (!vars.empty() && (options.record_provenance || incremental)) {
        group_keys.push_back(GroupKeyString(prefix));
      }
      model.MarkGroup(std::move(vars));
    }
    out.model_groups = model.decision_groups().size();
  }

  out.model_vars = model.num_vars();
  out.model_propagators = model.num_propagators();

  // ---- Phase B: search -------------------------------------------------------
  Model::Options sopts;
  sopts.time_limit_ms = options.time_limit_ms;
  sopts.node_limit = options.node_limit;
  sopts.backend = options.backend;
  sopts.seed = options.seed;
  sopts.restart_base_nodes = options.restart_base_nodes;
  sopts.num_workers = options.num_workers;
  sopts.max_iterations = options.max_iterations;
  sopts.subproblems = options.subproblems;
  sopts.naive_propagation = options.naive_propagation;

  // Warm start: map the cached previous solution onto this solve's freshly
  // created variables by var-table row identity. The periodic invokeSolver
  // loop usually re-solves a near-identical model, so yesterday's placement
  // is an excellent first incumbent today.
  const bool use_cache = warm_cache != nullptr && options.warm_start;
  std::vector<int64_t> hints;
  bool any_hint = false;
  if ((use_cache && !warm_cache->empty()) || options.group_key_prefix > 0) {
    hints.assign(model.num_vars(), Model::Options::kNoHint);
  }
  if (use_cache && !warm_cache->empty()) {
    for (const BridgeEval::VarRow& vr : sym_eval.var_rows()) {
      auto tit = warm_cache->rows.find(*vr.table);
      if (tit == warm_cache->rows.end()) continue;
      auto rit = tit->second.find(vr.key);
      if (rit == tit->second.end() ||
          rit->second.values.size() != vr.vars.size()) {
        continue;
      }
      for (size_t i = 0; i < vr.vars.size(); ++i) {
        hints[static_cast<size_t>(vr.vars[i].id)] = rit->second.values[i];
        any_hint = true;
      }
    }
    out.warm_started = any_hint;
  }
  // Snapshot the cache-derived hints (before the null-decision defaults
  // below) — the "warm" provenance classification means "the warm-start
  // cache supplied this value", matching warm_started above, not "any hint".
  std::vector<int64_t> cache_hints;
  if (options.record_provenance) cache_hints = hints;
  if (options.group_key_prefix > 0) {
    // Null-decision default for batched negotiation models: a decision cell
    // with no cached value is hinted to 0 when its domain allows it (e.g.
    // "migrate nothing" — the status quo each negotiation improves on).
    // Without this, the first-solution dive of a wide multi-link model must
    // discover a feasible point from scratch over [-cap, cap]^n, which is
    // exponential exactly when batching makes n large. Infeasible hints are
    // repaired by the search, never trusted.
    for (const BridgeEval::VarRow& vr : sym_eval.var_rows()) {
      for (solver::IntVar v : vr.vars) {
        int64_t& h = hints[static_cast<size_t>(v.id)];
        if (h == Model::Options::kNoHint &&
            model.InitialDomain(v).Contains(0)) {
          h = 0;
          any_hint = true;
        }
      }
    }
  }
  if (any_hint) sopts.warm_start = std::move(hints);

  // ---- Incremental classification -------------------------------------------
  // Fingerprint the model per decision group and compare against the
  // previous solve: clean groups stay pinned to the warm incumbent, search
  // focuses on the dirty ones. Falls back to a cold solve when there is
  // nothing to compare against (first solve, post-crash, cache disabled),
  // when no warm incumbent exists to pin to, or when more than
  // incr_threshold_pct of the groups changed.
  std::map<std::string, uint64_t> fp_map;
  const bool context_caching = ctx_cache != nullptr && options.cache;
  std::vector<uint64_t> fps;
  if (incremental || context_caching) {
    fps = ComputeFingerprints(model, sym_eval.var_rows());
  }
  if (context_caching) {
    // Namespace the persistent proof cache by the model fingerprint: a fact
    // delta that changes any group fingerprint changes the key, so proofs
    // about the previous model can never match — invalidation without a
    // sweep. Identical models across solves keep the namespace, which is
    // what lets a re-solve skip subtrees the last solve exhausted.
    uint64_t model_key = kFnvOffset;
    for (uint64_t f : fps) FnvMix(&model_key, f);
    ctx_cache->set_model_key(model_key);
    sopts.context_cache = ctx_cache;
  }
  if (incremental) {
    const size_t total = fps.size();
    auto key_of = [&](size_t gi) {
      return gi < group_keys.size() ? group_keys[gi] : std::string();
    };
    for (size_t gi = 0; gi < total; ++gi) fp_map[key_of(gi)] = fps[gi];

    bool fallback = false;
    std::vector<size_t> dirty;
    if (!incr->valid || !out.warm_started) {
      fallback = true;
      out.incr_dirty = static_cast<int>(total);
      out.incr_clean = 0;
    } else {
      for (size_t gi = 0; gi < total; ++gi) {
        auto it = incr->fingerprints.find(key_of(gi));
        if (it == incr->fingerprints.end() || it->second != fps[gi]) {
          dirty.push_back(gi);
        }
      }
      size_t vanished = 0;  // groups that existed last solve but not now
      for (const auto& [key, fp] : incr->fingerprints) {
        if (fp_map.find(key) == fp_map.end()) ++vanished;
      }
      out.incr_dirty = static_cast<int>(dirty.size());
      out.incr_clean = static_cast<int>(total - dirty.size());
      const size_t changes = dirty.size() + vanished;
      const auto threshold =
          static_cast<size_t>(std::max(options.incr_threshold_pct, 0));
      if (changes * 100 > threshold * total) fallback = true;
    }
    out.incr_fallback = fallback;
    if (!fallback) {
      sopts.incremental = true;
      sopts.focus_groups = std::move(dirty);
    }
  }

  solver::Solution sol = model.Solve(sopts);
  out.status = sol.status;
  out.stats = sol.stats;
  out.model_memory_bytes = sol.stats.peak_memory_bytes;
  if (!sol.has_solution()) return out;

  if (options.record_provenance) {
    out.provenance = BuildProvenance(model, sym_eval.var_rows(), group_keys,
                                     posted, cache_hints, sol);
  }

  if (use_cache) {
    // Fingerprints refresh in lockstep with the cache: they describe the
    // model whose incumbent the cache now holds.
    if (incremental) {
      incr->fingerprints = std::move(fp_map);
      incr->valid = true;
    }
    ++warm_cache->generation;
    for (const BridgeEval::VarRow& vr : sym_eval.var_rows()) {
      std::vector<int64_t> vals;
      vals.reserve(vr.vars.size());
      for (IntVar v : vr.vars) vals.push_back(sol.ValueOf(v));
      warm_cache->rows[*vr.table][vr.key] = {std::move(vals),
                                             warm_cache->generation};
    }
    // Evict keys that have not appeared for max_idle_solves solves; drop
    // emptied tables so empty() stays meaningful.
    if (warm_cache->max_idle_solves > 0) {
      for (auto& [table, entries] : warm_cache->rows) {
        std::erase_if(entries, [&](const auto& kv) {
          return warm_cache->generation - kv.second.last_used >
                 warm_cache->max_idle_solves;
        });
      }
      std::erase_if(warm_cache->rows,
                    [](const auto& kv) { return kv.second.empty(); });
    }
  }

  // ---- Phase C: concrete re-evaluation under the solution --------------------
  BridgeEval conc_eval(program_, engine_, nullptr);
  // Substitute solution values into the var-table rows.
  for (const auto& [name, rows] : sym_eval.tables()) {
    if (!program_->var_tables.count(name)) continue;
    std::vector<Row> concrete_rows = rows;
    for (Row& row : concrete_rows) {
      for (Value& cell : row) {
        if (cell.is_sym()) {
          cell = Value::Int(
              EvalLin(sym_eval.SymExpr(cell.sym_index()), sol));
        }
      }
    }
    conc_eval.SeedTable(name, std::move(concrete_rows));
  }
  for (const SolverRuleIR& rule : program_->solver_rules) {
    COLOGNE_RETURN_IF_ERROR(conc_eval.EvalRule(rule));
  }
  if (optimizing) {
    COLOGNE_ASSIGN_OR_RETURN(goal_val, conc_eval.GoalValue());
    if (!goal_val.symbolic && goal_val.concrete.is_numeric()) {
      out.objective = goal_val.concrete.as_double();
      out.has_objective = true;
    }
  }
  out.tables = std::move(conc_eval.tables());
  return out;
}

}  // namespace cologne::runtime

#include "runtime/system.h"

#include <algorithm>
#include <set>

#include "common/logging.h"
#include "common/strings.h"
#include "net/reliable_channel.h"

namespace cologne::runtime {

System::System(const colog::CompiledProgram* program, size_t num_nodes,
               Options options)
    : program_(program), options_(options), net_(&sim_, options.seed) {
  // The Colog `param NET_RELIABLE` knob or the runtime option turns on the
  // real retransmission/FIFO transport; every engine-derived tuple is then
  // marked reliable and survives loss without driver-level anti-entropy.
  net_reliable_ =
      options_.net_reliable || program_->knobs.net_reliable.value_or(false);
  net_.SetReliableTransport(net_reliable_);
  obs_metrics_ =
      options_.obs_metrics || program_->knobs.obs_metrics.value_or(false);
  if (obs_metrics_) {
    // Fixed buckets keep the histogram line stable across scenario sizes
    // (search-tree size per solve, in choice points).
    metrics_.DeclareHistogram("solve.nodes", {0, 10, 100, 1000, 10000});
  }
  for (size_t i = 0; i < num_nodes; ++i) {
    NodeId id = net_.AddNode();
    nodes_.push_back(std::make_unique<Instance>(id, program_));
  }
  sent_log_.resize(num_nodes);
  rx_.resize(num_nodes);
  restart_pending_.assign(num_nodes, 0);
}

Status System::Init() {
  for (auto& node : nodes_) {
    COLOGNE_RETURN_IF_ERROR(node->Init());
    if (obs_metrics_) node->set_metrics(&metrics_);
    WireNode(node->id());
  }
  return Status::OK();
}

void System::SnapshotMetrics(uint64_t round) {
  if (!obs_metrics_) return;
  // Network totals are cumulative on the Network side; fold the delta into
  // the registry's monotone counters.
  auto sync = [this](const char* name, uint64_t total) {
    uint64_t cur = metrics_.counter(name);
    if (total > cur) metrics_.Add(name, total - cur);
  };
  uint64_t sent = 0, recv = 0, bytes_sent = 0, bytes_recv = 0;
  for (const auto& n : nodes_) {
    const net::TrafficStats& st = net_.StatsOf(n->id());
    sent += st.messages_sent;
    recv += st.messages_received;
    bytes_sent += st.bytes_sent;
    bytes_recv += st.bytes_received;
  }
  sync("net.msgs_sent", sent);
  sync("net.msgs_recv", recv);
  sync("net.bytes_sent", bytes_sent);
  sync("net.bytes_recv", bytes_recv);
  sync("net.dropped", net_.TotalDropped());
  if (net_reliable_) {
    const net::ChannelStats& ch = net_.channel().stats();
    sync("ch.data_sent", ch.data_sent);
    sync("ch.retransmits", ch.retransmits);
    sync("ch.fast_retransmits", ch.fast_retransmits);
    sync("ch.acks_sent", ch.acks_sent);
    sync("ch.dup_data", ch.dup_data);
    sync("ch.reordered", ch.reordered);
    sync("ch.gave_up", ch.gave_up);
  }
  metrics_.SetGauge("sim.executed", static_cast<int64_t>(sim_.executed()));
  metrics_.SetGauge("sim.pending", static_cast<int64_t>(sim_.pending()));
  if (trace_ != nullptr) trace_->Metrics(round, metrics_);
}

void System::WireNode(NodeId id) {
  Instance& inst = node(id);
  // Outbound: engine-derived remote tuples enter the network, stamped with
  // the sender's incarnation epoch and journaled for anti-entropy replay.
  inst.engine().SetSender([this, id](NodeId dest, const std::string& table,
                                     const Row& row, int sign) {
    sent_log_[static_cast<size_t>(id)].push_back(
        SentRecord{dest, table, row, sign});
    net::Message msg;
    msg.table = table;
    msg.row = row;
    msg.sign = sign;
    msg.epoch = node(id).epoch();
    msg.reliable = net_reliable_;
    Status s = net_.Send(id, dest, std::move(msg));
    if (!s.ok()) {
      COLOGNE_WARN("node " + std::to_string(id) + ": " + s.ToString());
    }
  });
  // Inbound: receiver-side fault policy (crash drop, epoch fence, duplicate
  // suppression), then apply the delta and run the local fixpoint.
  net_.SetReceiver(id, [this, id](NodeId from, NodeId,
                                  const net::Message& msg) {
    Instance& inst = this->node(id);
    if (inst.crashed()) {
      if (trace_ != nullptr) trace_->RxDrop(from, id, msg.table, "node_down");
      return;
    }
    bool suppressed = false;
    if (from != id) {
      const Instance& src = this->node(from);
      if (msg.epoch != src.epoch()) {
        // A message from a previous incarnation of `from` (sent before its
        // crash, delivered after its restart) — fence it off.
        if (trace_ != nullptr) {
          trace_->RxDrop(from, id, msg.table, "stale_epoch");
        }
        return;
      }
      PeerState& ps = rx_[static_cast<size_t>(id)][from];
      if (!msg.replay && msg.sent_s <= ps.floor) {
        // In flight across a restart/resync: the send-log replay issued at
        // `floor` already carries this delta. Keyed on the replay flag, not
        // the reliable flag — under NET_RELIABLE every ordinary message is
        // reliable yet still superseded by a replay.
        if (trace_ != nullptr) {
          trace_->RxDrop(from, id, msg.table, "superseded");
        }
        return;
      }
      if (ps.epoch_seen != msg.epoch) {
        // First contact with a new incarnation outside the orchestrated
        // restart path (RestartNode rolls embedded into debt eagerly; this
        // covers direct Crash/Restart calls by tests).
        for (auto& [key, count] : ps.embedded) ps.debt[key] += count;
        ps.embedded.clear();
        ps.epoch_seen = msg.epoch;
      }
      auto key = std::make_pair(msg.table, msg.row);
      if (msg.sign > 0) {
        auto it = ps.debt.find(key);
        if (it != ps.debt.end() && it->second > 0) {
          // Already embedded by the previous incarnation: pay off the debt
          // instead of inflating the derivation count.
          if (--it->second == 0) ps.debt.erase(it);
          ++ps.embedded[key];
          suppressed = true;
        } else {
          ++ps.embedded[key];
        }
      } else {
        auto it = ps.embedded.find(key);
        if (it != ps.embedded.end() && --it->second == 0) ps.embedded.erase(it);
      }
    }
    if (suppressed) {
      if (trace_ != nullptr) trace_->RxDrop(from, id, msg.table, "dedup");
      return;
    }
    Status s = inst.engine().Apply(msg.table, msg.row, msg.sign);
    if (s.ok()) s = inst.engine().Flush();
    if (!s.ok()) {
      COLOGNE_WARN("node " + std::to_string(id) + " rx: " + s.ToString());
    }
  });
}

void System::ScheduleSolve(NodeId node_id, double delay_s,
                           std::function<void(const SolveOutput&)> on_done) {
  sim_.Schedule(delay_s, [this, node_id, on_done = std::move(on_done)] {
    Result<SolveOutput> r = node(node_id).Solve(SolveRequest{});
    if (!r.ok()) {
      COLOGNE_WARN("node " + std::to_string(node_id) +
                   " solve failed: " + r.status().ToString());
      return;
    }
    if (on_done) on_done(r.value());
  });
}

void System::SetTrace(TraceRecorder* trace) {
  trace_ = trace;
  if (trace_ != nullptr) {
    trace_->SetClock([this] { return sim_.Now(); });
  }
  for (auto& n : nodes_) n->set_trace(trace);
  net_.SetEventHook([this](const net::NetEvent& ev) {
    if (trace_ != nullptr) trace_->Net(ev);
  });
}

void System::ScheduleWindowMarkers(const net::FaultPlan& plan) {
  // Pure trace markers: they record window transitions but change no state,
  // so scheduling them unconditionally keeps traced and untraced runs on
  // the same event sequence.
  auto mark = [this](double t, const char* kind, std::string detail) {
    sim_.ScheduleAt(t, [this, kind, detail = std::move(detail)] {
      if (trace_ != nullptr) trace_->Fault(kind, detail);
    });
  };
  for (const net::LinkFault& f : plan.links) {
    std::string link = StrFormat("\"link\":\"%d-%d\"", f.a, f.b);
    for (const auto& w : f.down) {
      mark(w.t0, "link_down", link);
      mark(w.t1, "link_up", link);
    }
    for (const auto& w : f.loss) {
      mark(w.t0, "loss_on",
           link + StrFormat(",\"p\":%s", DoubleToShortestString(w.p).c_str()));
      mark(w.t1, "loss_off", link);
    }
    for (const auto& w : f.duplicate) {
      mark(w.t0, "dup_on",
           link + StrFormat(",\"p\":%s", DoubleToShortestString(w.p).c_str()));
      mark(w.t1, "dup_off", link);
    }
    for (const auto& w : f.reorder) {
      mark(w.t0, "reorder_on",
           link + StrFormat(",\"jitter\":%s",
                            DoubleToShortestString(w.p).c_str()));
      mark(w.t1, "reorder_off", link);
    }
  }
  for (const net::PartitionFault& part : plan.partitions) {
    std::string group = "\"group\":[";
    for (size_t i = 0; i < part.group.size(); ++i) {
      if (i) group += ',';
      group += StrFormat("%d", part.group[i]);
    }
    group += ']';
    mark(part.t0, "partition_on", group);
    mark(part.t1, "partition_off", group);
  }
}

Status System::ApplyFaultPlan(const net::FaultPlan& plan) {
  for (const net::CrashFault& c : plan.crashes) {
    if (c.node < 0 || static_cast<size_t>(c.node) >= nodes_.size()) {
      return Status::InvalidArgument(
          StrFormat("fault plan crashes unknown node %d", c.node));
    }
    if (c.restart_t >= 0 && c.restart_t < c.t) {
      return Status::InvalidArgument(
          StrFormat("fault plan restarts node %d before its crash", c.node));
    }
  }
  fault_plan_ = plan;
  net_.SetFaultPlan(plan);
  ScheduleWindowMarkers(plan);
  for (const net::CrashFault& c : plan.crashes) {
    sim_.ScheduleAt(c.t, [this, node = c.node] {
      Status s = CrashNode(node);
      if (!s.ok()) COLOGNE_WARN("crash injection: " + s.ToString());
    });
    if (c.restart_t >= 0) {
      restart_pending_[static_cast<size_t>(c.node)] = 1;
      sim_.ScheduleAt(c.restart_t,
                      [this, node = c.node, retain = c.retain_warm_start] {
        Status s = RestartNode(node, retain);
        if (!s.ok()) COLOGNE_WARN("restart injection: " + s.ToString());
      });
    }
  }
  return Status::OK();
}

Status System::CrashNode(NodeId id) {
  if (id < 0 || static_cast<size_t>(id) >= nodes_.size()) {
    return Status::InvalidArgument("unknown node");
  }
  Instance& inst = node(id);
  if (inst.crashed()) return Status::OK();
  if (trace_ != nullptr) {
    trace_->Fault("crash", StrFormat("\"node\":%d", id));
  }
  COLOGNE_RETURN_IF_ERROR(inst.Crash());
  // Everything this node had learned from peers is gone with its engine.
  rx_[static_cast<size_t>(id)].clear();
  return Status::OK();
}

Status System::RestartNode(NodeId id, bool retain_warm_start) {
  if (id < 0 || static_cast<size_t>(id) >= nodes_.size()) {
    return Status::InvalidArgument("unknown node");
  }
  Instance& inst = node(id);
  if (!inst.crashed()) return Status::OK();
  restart_pending_[static_cast<size_t>(id)] = 0;
  if (trace_ != nullptr) {
    trace_->Fault("restart",
                  StrFormat("\"node\":%d,\"retain_warm\":%d", id,
                            retain_warm_start ? 1 : 0));
  }
  // The new incarnation re-derives its contribution from scratch: roll every
  // peer's embedded view of this node into debt so re-sent tuples pay it
  // off instead of inflating counts.
  COLOGNE_RETURN_IF_ERROR(inst.Restart(retain_warm_start));
  double now = sim_.Now();
  for (size_t y = 0; y < nodes_.size(); ++y) {
    if (static_cast<NodeId>(y) == id) continue;
    auto it = rx_[y].find(id);
    if (it == rx_[y].end()) continue;
    PeerState& ps = it->second;
    for (auto& [key, count] : ps.embedded) ps.debt[key] += count;
    ps.embedded.clear();
    ps.epoch_seen = inst.epoch();
    ++ps.sync_gen;
  }
  // This node's send log described its previous incarnation's contribution;
  // the rebuild below regenerates the current one.
  sent_log_[static_cast<size_t>(id)].clear();
  WireNode(id);
  COLOGNE_RETURN_IF_ERROR(inst.ReplayBaseFacts());
  // Anti-entropy rejoin: every live peer replays what it ever shipped to
  // this node, chronologically, over the reliable channel. Ordinary
  // messages still in flight toward this node are superseded by the replay
  // and fenced via the floor timestamp.
  for (size_t y = 0; y < nodes_.size(); ++y) {
    NodeId peer = static_cast<NodeId>(y);
    if (peer == id || node(peer).crashed()) continue;
    PeerState& ps = rx_[static_cast<size_t>(id)][peer];
    ps.floor = now;
    ++ps.sync_gen;
    ReplaySentLog(peer, id, /*net_state=*/false);
  }
  // Reconciliation sweeps: once the re-derived and replayed sends have
  // landed, any debt still outstanding is state the sender no longer
  // stands behind.
  for (size_t y = 0; y < nodes_.size(); ++y) {
    NodeId peer = static_cast<NodeId>(y);
    if (peer == id) continue;
    ScheduleDebtReconcile(peer, id);  // peers' debt toward this node
    ScheduleDebtReconcile(id, peer);  // this node's debt toward peers
  }
  if (restart_hook_) restart_hook_(id);
  return Status::OK();
}

Status System::ResyncNode(NodeId id) {
  if (id < 0 || static_cast<size_t>(id) >= nodes_.size()) {
    return Status::InvalidArgument("unknown node");
  }
  if (node(id).crashed()) return Status::OK();
  double now = sim_.Now();
  for (size_t y = 0; y < nodes_.size(); ++y) {
    NodeId peer = static_cast<NodeId>(y);
    if (peer == id || node(peer).crashed()) continue;
    PeerState& ps = rx_[static_cast<size_t>(id)][peer];
    for (auto& [key, count] : ps.embedded) ps.debt[key] += count;
    ps.embedded.clear();
    ps.floor = now;
    ++ps.sync_gen;
    ReplaySentLog(peer, id, /*net_state=*/true);
    ScheduleDebtReconcile(id, peer);
  }
  return Status::OK();
}

void System::ReplaySentLog(NodeId src, NodeId dst, bool net_state) {
  auto send = [this, src, dst](const std::string& table, const Row& row,
                               int sign) {
    net::Message msg;
    msg.table = table;
    msg.row = row;
    msg.sign = sign;
    msg.epoch = node(src).epoch();
    msg.reliable = true;
    msg.replay = true;
    Status s = net_.Send(src, dst, std::move(msg));
    if (!s.ok()) {
      COLOGNE_WARN("send-log replay " + std::to_string(src) + "->" +
                   std::to_string(dst) + ": " + s.ToString());
    }
  };
  const auto& log = sent_log_[static_cast<size_t>(src)];
  if (!net_state) {
    for (const SentRecord& rec : log) {
      if (rec.dest == dst) send(rec.table, rec.row, rec.sign);
    }
    return;
  }
  // Net mode: per-row net counts plus the order of each row's latest
  // insertion, so keyed replacement at the receiver lands on the same
  // surviving row it did originally.
  std::map<std::pair<std::string, Row>, int64_t> net;
  std::vector<std::pair<std::string, Row>> inserts;  // may contain stale dups
  for (const SentRecord& rec : log) {
    if (rec.dest != dst) continue;
    auto key = std::make_pair(rec.table, rec.row);
    net[key] += rec.sign;
    if (rec.sign > 0) inserts.push_back(std::move(key));
  }
  // Keep only each row's last insertion, preserving relative order.
  std::set<std::pair<std::string, Row>> seen;
  std::vector<const std::pair<std::string, Row>*> order;
  for (auto it = inserts.rbegin(); it != inserts.rend(); ++it) {
    if (seen.insert(*it).second) order.push_back(&*it);
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    int64_t count = net[**it];
    for (int64_t k = 0; k < count; ++k) send((*it)->first, (*it)->second, +1);
  }
}

void System::ScheduleDebtReconcile(NodeId dst, NodeId src) {
  auto it = rx_[static_cast<size_t>(dst)].find(src);
  uint64_t gen = it == rx_[static_cast<size_t>(dst)].end()
                     ? 0
                     : it->second.sync_gen;
  sim_.Schedule(options_.reconcile_delay_s, [this, dst, src, gen] {
    if (node(dst).crashed()) return;
    auto it = rx_[static_cast<size_t>(dst)].find(src);
    if (it == rx_[static_cast<size_t>(dst)].end()) return;
    PeerState& ps = it->second;
    // A newer restart/resync superseded this sweep; its own sweep follows.
    if (ps.sync_gen != gen || ps.debt.empty()) return;
    Instance& inst = node(dst);
    for (const auto& [key, count] : ps.debt) {
      for (int64_t k = 0; k < count; ++k) {
        Status s = inst.engine().Apply(key.first, key.second, -1);
        if (!s.ok()) COLOGNE_WARN("debt reconcile: " + s.ToString());
      }
      if (trace_ != nullptr) {
        trace_->RxDrop(src, dst, key.first, "reconcile");
      }
    }
    ps.debt.clear();
    Status s = inst.engine().Flush();
    if (!s.ok()) COLOGNE_WARN("debt reconcile flush: " + s.ToString());
  });
}

bool System::NodePermanentlyDown(NodeId id) const {
  if (id < 0 || static_cast<size_t>(id) >= nodes_.size()) return false;
  return nodes_[static_cast<size_t>(id)]->crashed() &&
         restart_pending_[static_cast<size_t>(id)] == 0;
}

bool System::AnyRestartPending() const {
  for (char pending : restart_pending_) {
    if (pending) return true;
  }
  return false;
}

}  // namespace cologne::runtime

#include "runtime/system.h"

#include "common/logging.h"

namespace cologne::runtime {

System::System(const colog::CompiledProgram* program, size_t num_nodes,
               Options options)
    : program_(program), options_(options), net_(&sim_, options.seed) {
  for (size_t i = 0; i < num_nodes; ++i) {
    NodeId id = net_.AddNode();
    nodes_.push_back(std::make_unique<Instance>(id, program_));
  }
}

Status System::Init() {
  for (auto& node : nodes_) {
    COLOGNE_RETURN_IF_ERROR(node->Init());
    NodeId id = node->id();
    // Outbound: engine-derived remote tuples enter the network.
    node->engine().SetSender([this, id](NodeId dest, const std::string& table,
                                        const Row& row, int sign) {
      net::Message msg;
      msg.table = table;
      msg.row = row;
      msg.sign = sign;
      Status s = net_.Send(id, dest, std::move(msg));
      if (!s.ok()) {
        COLOGNE_WARN("node " + std::to_string(id) + ": " + s.ToString());
      }
    });
    // Inbound: delivered tuples apply as deltas and run the local fixpoint.
    net_.SetReceiver(id, [this, id](NodeId, NodeId, const net::Message& msg) {
      Instance& inst = this->node(id);
      Status s = inst.engine().Apply(msg.table, msg.row, msg.sign);
      if (s.ok()) s = inst.engine().Flush();
      if (!s.ok()) {
        COLOGNE_WARN("node " + std::to_string(id) + " rx: " + s.ToString());
      }
    });
  }
  return Status::OK();
}

void System::ScheduleSolve(NodeId node_id, double delay_s,
                           std::function<void(const SolveOutput&)> on_done) {
  sim_.Schedule(delay_s, [this, node_id, on_done = std::move(on_done)] {
    Result<SolveOutput> r = node(node_id).InvokeSolver();
    if (!r.ok()) {
      COLOGNE_WARN("node " + std::to_string(node_id) +
                   " solve failed: " + r.status().ToString());
      return;
    }
    if (on_done) on_done(r.value());
  });
}

}  // namespace cologne::runtime

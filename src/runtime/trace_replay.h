// Deterministic execution traces and replay checking.
//
// A TraceRecorder captures every observable transition of a distributed run
// as canonical JSON lines: message sends/deliveries/drops/duplicates, fault
// transitions (link flaps, partitions, crashes, restarts, recovery replay),
// and invokeSolver outcomes. Two runs of the same (program, seed, fault
// plan) produce byte-identical traces — the determinism contract the
// soak/golden tests enforce — and the header line alone (program + seed +
// fault plan JSON) is enough to reproduce a failing run.
//
// Trace format: one JSON object per line.
//   {"ev":"header","program":"followsun","seed":11,"fault_plan":{...}}
//   {"t":0.1,"ev":"send","from":1,"to":0,"table":"tmp_d2","row":"(...)",
//    "sign":1,"bytes":44}
//   {"t":5.2,"ev":"fault","kind":"crash","node":2}
//   {"t":7,"ev":"solve","node":3,"status":"optimal","objective":120,
//    "vars":4,"warm":0}
// Only virtual-time quantities appear; wall-clock fields (solve wall_ms,
// search node counts under a wall-clock budget) are deliberately excluded.
#ifndef COLOGNE_RUNTIME_TRACE_REPLAY_H_
#define COLOGNE_RUNTIME_TRACE_REPLAY_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "net/fault_plan.h"
#include "net/network.h"
#include "obs/metrics.h"

namespace cologne::runtime {

/// \brief Per-decision-group solve provenance (ISSUE 6): how this group's
/// incumbent values were reached and which constraints were binding there.
///
/// Recorded by the solver bridge when OBS_METRICS is on; serialized into
/// the `solve` trace event as `"prov":[...]` (omitted entirely when absent,
/// so pre-observability traces are byte-identical).
struct SolveProvGroup {
  /// Decision-group key ("dc(2)"-style rendering of the grouping prefix);
  /// empty for an ungrouped solve (the whole model is one group).
  std::string key;
  /// Value-source classification over the group's variables: "warm" (every
  /// value equals its warm-start hint), "domain" (every value sits on a
  /// domain bound — propagation or B&B clamp decided it), "search" (neither),
  /// or "mixed".
  std::string src;
  /// Labels of constraints that touch the group and hold with zero slack at
  /// the incumbent, sorted and deduplicated.
  std::vector<std::string> tight;
};

/// \brief Ordered log of canonical trace lines for one run.
class TraceRecorder {
 public:
  /// Virtual-time source (e.g. the System's simulator clock). Without a
  /// clock, the manually set time (SetTime) is used — the standalone ACloud
  /// replay drives it per interval.
  void SetClock(std::function<double()> clock) { clock_ = std::move(clock); }
  void SetTime(double t) { manual_time_ = t; }
  double Now() const { return clock_ ? clock_() : manual_time_; }

  /// Emit the header line. Call once, first.
  void Header(const std::string& program, uint64_t seed,
              const net::FaultPlan& plan);

  /// Serialize a network transition.
  void Net(const net::NetEvent& ev);

  /// A fault transition: kind in {"crash","restart","link_down","link_up",
  /// "loss_on","loss_off","dup_on","dup_off","reorder_on","reorder_off",
  /// "partition_on","partition_off"}. `detail` is pre-rendered JSON fields
  /// (e.g. "\"node\":2"), appended verbatim.
  void Fault(const char* kind, const std::string& detail);

  /// Incremental classification of one solve (ISSUE 7), serialized into the
  /// `solve` event as `"incr":{"dirty":N,"clean":M,"fallback":0|1}` —
  /// omitted entirely when the incremental path is off, so pre-incremental
  /// traces are byte-identical.
  struct SolveIncr {
    int dirty = 0;
    int clean = 0;
    bool fallback = false;
    /// Whole-solve reuse: the cached output was served without a model
    /// build or search (every input table content-unchanged).
    bool reused = false;
  };

  /// An invokeSolver outcome (deterministic fields only). `groups` is the
  /// batched-solve decision-group count; 0 (ungrouped) omits the field so
  /// pre-batching traces are unchanged. `prov` (nullptr or empty = omitted)
  /// appends the per-group binding-constraint provenance; `incr` (nullptr =
  /// omitted) the incremental dirty/clean classification.
  void Solve(NodeId node, const char* status, bool has_objective,
             double objective, size_t vars, size_t groups, bool warm_started,
             const std::vector<SolveProvGroup>* prov = nullptr,
             const SolveIncr* incr = nullptr);

  /// A metrics snapshot at a round boundary: the registry's counters,
  /// gauges and histograms as one canonical `metrics` line.
  void Metrics(uint64_t round, const obs::MetricsRegistry& registry);

  /// An application-level drop at the receiving runtime (crashed node,
  /// stale epoch, duplicate suppression).
  void RxDrop(NodeId from, NodeId to, const std::string& table,
              const char* reason);

  const std::vector<std::string>& lines() const { return lines_; }
  std::string ToString() const;
  void Clear() { lines_.clear(); }

  Status WriteFile(const std::string& path) const;

 private:
  void Line(std::string line) { lines_.push_back(std::move(line)); }

  std::function<double()> clock_;
  double manual_time_ = 0;
  std::vector<std::string> lines_;
};

/// Read a trace file into lines (trailing newline tolerated).
Result<std::vector<std::string>> ReadTraceLines(const std::string& path);

/// Compare two traces; returns the empty string when byte-identical,
/// otherwise a human-readable description of the first divergence.
std::string DiffTraces(const std::vector<std::string>& a,
                       const std::vector<std::string>& b);

/// Parsed header of a recorded trace: everything needed to reproduce the
/// run (re-compile `program`, re-seed, re-apply the fault plan).
struct TraceHeader {
  std::string program;
  uint64_t seed = 0;
  net::FaultPlan plan;
};

/// Parse the header line of a trace (the first line).
Result<TraceHeader> ParseTraceHeader(const std::string& header_line);

}  // namespace cologne::runtime

#endif  // COLOGNE_RUNTIME_TRACE_REPLAY_H_

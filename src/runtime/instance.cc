#include "runtime/instance.h"

#include <algorithm>

#include "common/logging.h"

namespace cologne::runtime {

Status Instance::InitEngine() {
  for (const auto& [name, schema] : program_->tables) {
    COLOGNE_RETURN_IF_ERROR(engine_.DeclareTable(schema));
  }
  for (const datalog::RuleIR& rule : program_->engine_rules) {
    COLOGNE_RETURN_IF_ERROR(engine_.AddRule(rule));
  }
  return Status::OK();
}

Status Instance::Init() {
  COLOGNE_RETURN_IF_ERROR(InitEngine());
  solve_options_ = ResolveSolveOptions(*program_, solve_options_);
  return Status::OK();
}

Status Instance::ApplyFact(const std::string& table, Row row, int sign) {
  if (crashed_) {
    return Status::RuntimeError("node " + std::to_string(id_) +
                                " is crashed; fact rejected");
  }
  COLOGNE_RETURN_IF_ERROR(engine_.Apply(table, row, sign));
  base_log_.push_back(BaseFact{table, std::move(row), sign});
  return Status::OK();
}

Status Instance::InsertFact(const std::string& table, Row row) {
  COLOGNE_RETURN_IF_ERROR(ApplyFact(table, std::move(row), +1));
  return engine_.Flush();
}

Status Instance::DeleteFact(const std::string& table, Row row) {
  COLOGNE_RETURN_IF_ERROR(ApplyFact(table, std::move(row), -1));
  return engine_.Flush();
}

Status Instance::Crash() {
  if (crashed_) return Status::OK();
  crashed_ = true;
  ++crash_count_;
  // Rebuild the engine empty-but-declared: in-flight deltas, derived state,
  // and the sender hook are gone, but readers (scenario drivers collecting
  // results) still find every table.
  engine_ = datalog::Engine(EngineSelf());
  COLOGNE_RETURN_IF_ERROR(InitEngine());
  owned_rows_.clear();
  return Status::OK();
}

Status Instance::Restart(bool retain_warm_start) {
  if (!crashed_) {
    return Status::RuntimeError("node " + std::to_string(id_) +
                                " is not crashed; cannot restart");
  }
  crashed_ = false;
  ++epoch_;
  if (!retain_warm_start) warm_cache_.clear();
  // Crash() already rebuilt a declared-empty engine; keep it and let the
  // caller re-install the sender before replaying the journal.
  return Status::OK();
}

Status Instance::ReplayBaseFacts() {
  if (crashed_) {
    return Status::RuntimeError("node " + std::to_string(id_) +
                                " is crashed; cannot replay");
  }
  // Chronological replay reproduces keyed-replacement order exactly; each
  // delta flushes so derived state (and re-shipped localized tuples) follow
  // the same order as the original execution.
  for (const BaseFact& fact : base_log_) {
    COLOGNE_RETURN_IF_ERROR(engine_.Apply(fact.table, fact.row, fact.sign));
    COLOGNE_RETURN_IF_ERROR(engine_.Flush());
  }
  return Status::OK();
}

Result<SolveOutput> Instance::InvokeSolver() {
  return RunSolve(solve_options_, /*group_key_prefix=*/0);
}

Result<SolveOutput> Instance::InvokeSolverBatched(int group_key_prefix) {
  return RunSolve(solve_options_, group_key_prefix);
}

Result<SolveOutput> Instance::RunSolve(const SolveOptions& options,
                                       int group_key_prefix) {
  if (crashed_) {
    if (trace_ != nullptr) {
      trace_->Solve(id_, "down", false, 0, 0, 0, false);
    }
    if (metrics_ != nullptr) metrics_->Add("solve.down");
    return Status::RuntimeError("node " + std::to_string(id_) +
                                " is crashed; solver unavailable");
  }
  SolveOptions opts = options;
  // Provenance rides the same knob as the metrics stream: recording it
  // without a sink would pay the bookkeeping for nothing, and the `prov`
  // trace field must stay absent when OBS_METRICS is off.
  if (metrics_ != nullptr) opts.record_provenance = true;
  SolverBridge bridge(program_, &engine_);
  COLOGNE_ASSIGN_OR_RETURN(
      out, group_key_prefix > 0
               ? bridge.SolveBatched(opts, group_key_prefix, &warm_cache_)
               : bridge.Solve(opts, &warm_cache_));
  ++solve_count_;
  total_solve_ms_ += out.stats.wall_ms;
  if (metrics_ != nullptr) {
    obs::MetricsRegistry& m = *metrics_;
    m.Add("solve.count");
    m.Add("solve.nodes", out.stats.nodes);
    m.Add("solve.failures", out.stats.failures);
    m.Add("solve.propagations", out.stats.propagations);
    m.Add("solve.iterations", out.stats.iterations);
    m.Add("solve.restarts", out.stats.restarts);
    if (out.stats.lns_accepted > 0) {
      m.Add("lns.accepted", out.stats.lns_accepted);
    }
    if (out.warm_started) m.Add("solve.warm");
    for (const auto& [kind, count] : out.stats.propagations_by_kind) {
      m.Add("prop." + kind, count);
    }
    m.Observe("solve.nodes", static_cast<int64_t>(out.stats.nodes));
  }
  if (out.has_solution()) {
    // Batched solves flush per delta: several migVm rows share one
    // read-modify-write target (r3's curVm), and each must see the
    // previous row's effect (see Writeback).
    COLOGNE_RETURN_IF_ERROR(
        Writeback(out.tables, /*flush_per_delta=*/group_key_prefix > 0));
  }
  if (trace_ != nullptr) {
    trace_->Solve(id_, solver::SolveStatusName(out.status), out.has_objective,
                  out.objective, out.model_vars, out.model_groups,
                  out.warm_started,
                  out.provenance.empty() ? nullptr : &out.provenance);
  }
  return out;
}

Status Instance::Writeback(
    const std::map<std::string, std::vector<Row>>& tables,
    bool flush_per_delta) {
  // Normalize new rows per output table (sorted, deduplicated).
  std::map<std::string, std::vector<Row>> next;
  for (const std::string& name : program_->solver_output_tables) {
    auto it = tables.find(name);
    std::vector<Row> rows;
    if (it != tables.end()) rows = it->second;
    std::sort(rows.begin(), rows.end());
    rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
    next[name] = std::move(rows);
  }

  // Deletes first (rows we owned that are gone), then inserts. Insert-side
  // keyed displacement then handles value updates cleanly. Var tables are
  // decision records and only ever *upsert*: each solve covers the current
  // forall bindings, and decisions for bindings outside this solve (e.g.
  // links negotiated in earlier Follow-the-Sun rounds) must survive.
  for (const auto& [name, rows] : owned_rows_) {
    if (program_->var_tables.count(name)) continue;
    const std::vector<Row>& fresh = next.count(name) ? next[name]
                                                     : std::vector<Row>{};
    for (const Row& old : rows) {
      if (!std::binary_search(fresh.begin(), fresh.end(), old)) {
        COLOGNE_RETURN_IF_ERROR(engine_.Apply(name, old, -1));
      }
    }
  }
  for (const auto& [name, rows] : next) {
    auto owned_it = owned_rows_.find(name);
    const std::vector<Row>* old =
        owned_it == owned_rows_.end() ? nullptr : &owned_it->second;
    for (const Row& row : rows) {
      if (old == nullptr ||
          !std::binary_search(old->begin(), old->end(), row)) {
        COLOGNE_RETURN_IF_ERROR(engine_.Apply(name, row, +1));
        // Batched mode: run the fixpoint now so the next inserted row
        // observes this one's post-solve effects (sequential per-delta
        // semantics, matching what per-link solves produce one at a time).
        if (flush_per_delta) COLOGNE_RETURN_IF_ERROR(engine_.Flush());
      }
    }
  }
  owned_rows_ = std::move(next);
  return engine_.Flush();
}

}  // namespace cologne::runtime

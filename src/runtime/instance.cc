#include "runtime/instance.h"

#include <algorithm>

#include "common/logging.h"

namespace cologne::runtime {

Status Instance::Init() {
  for (const auto& [name, schema] : program_->tables) {
    COLOGNE_RETURN_IF_ERROR(engine_.DeclareTable(schema));
  }
  for (const datalog::RuleIR& rule : program_->engine_rules) {
    COLOGNE_RETURN_IF_ERROR(engine_.AddRule(rule));
  }
  solve_options_ = ResolveSolveOptions(*program_, solve_options_);
  return Status::OK();
}

Status Instance::InsertFact(const std::string& table, Row row) {
  COLOGNE_RETURN_IF_ERROR(engine_.Apply(table, row, +1));
  return engine_.Flush();
}

Status Instance::DeleteFact(const std::string& table, Row row) {
  COLOGNE_RETURN_IF_ERROR(engine_.Apply(table, row, -1));
  return engine_.Flush();
}

Result<SolveOutput> Instance::InvokeSolver() {
  SolverBridge bridge(program_, &engine_);
  COLOGNE_ASSIGN_OR_RETURN(out, bridge.Solve(solve_options_, &warm_cache_));
  ++solve_count_;
  total_solve_ms_ += out.stats.wall_ms;
  if (out.has_solution()) {
    COLOGNE_RETURN_IF_ERROR(Writeback(out.tables));
  }
  return out;
}

Status Instance::Writeback(
    const std::map<std::string, std::vector<Row>>& tables) {
  // Normalize new rows per output table (sorted, deduplicated).
  std::map<std::string, std::vector<Row>> next;
  for (const std::string& name : program_->solver_output_tables) {
    auto it = tables.find(name);
    std::vector<Row> rows;
    if (it != tables.end()) rows = it->second;
    std::sort(rows.begin(), rows.end());
    rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
    next[name] = std::move(rows);
  }

  // Deletes first (rows we owned that are gone), then inserts. Insert-side
  // keyed displacement then handles value updates cleanly. Var tables are
  // decision records and only ever *upsert*: each solve covers the current
  // forall bindings, and decisions for bindings outside this solve (e.g.
  // links negotiated in earlier Follow-the-Sun rounds) must survive.
  for (const auto& [name, rows] : owned_rows_) {
    if (program_->var_tables.count(name)) continue;
    const std::vector<Row>& fresh = next.count(name) ? next[name]
                                                     : std::vector<Row>{};
    for (const Row& old : rows) {
      if (!std::binary_search(fresh.begin(), fresh.end(), old)) {
        COLOGNE_RETURN_IF_ERROR(engine_.Apply(name, old, -1));
      }
    }
  }
  for (const auto& [name, rows] : next) {
    auto owned_it = owned_rows_.find(name);
    const std::vector<Row>* old =
        owned_it == owned_rows_.end() ? nullptr : &owned_it->second;
    for (const Row& row : rows) {
      if (old == nullptr ||
          !std::binary_search(old->begin(), old->end(), row)) {
        COLOGNE_RETURN_IF_ERROR(engine_.Apply(name, row, +1));
      }
    }
  }
  owned_rows_ = std::move(next);
  return engine_.Flush();
}

}  // namespace cologne::runtime

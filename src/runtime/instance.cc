#include "runtime/instance.h"

#include <algorithm>

#include "common/logging.h"

namespace cologne::runtime {

namespace {

// Compatibility key of the whole-solve reuse path: every knob that feeds the
// model build or the search must match between the cached solve and the
// request, or identical inputs no longer imply an identical output.
uint64_t ReuseOptionsKey(const SolveOptions& o, int group_key_prefix) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(static_cast<uint64_t>(o.time_limit_ms * 1000.0));
  mix(o.node_limit);
  mix(static_cast<uint64_t>(o.backend));
  mix(o.seed);
  mix(o.restart_base_nodes);
  mix(static_cast<uint64_t>(o.num_workers));
  mix(o.max_iterations);
  mix(static_cast<uint64_t>(group_key_prefix));
  mix(o.warm_start ? 1u : 0u);
  mix(o.record_provenance ? 1u : 0u);
  mix(static_cast<uint64_t>(o.incr_threshold_pct));
  mix(o.cache ? 1u : 0u);
  mix(static_cast<uint64_t>(o.subproblems));
  return h;
}

}  // namespace

Status Instance::InitEngine() {
  for (const auto& [name, schema] : program_->tables) {
    COLOGNE_RETURN_IF_ERROR(engine_.DeclareTable(schema));
  }
  for (const datalog::RuleIR& rule : program_->engine_rules) {
    COLOGNE_RETURN_IF_ERROR(engine_.AddRule(rule));
  }
  return Status::OK();
}

Status Instance::Init() {
  COLOGNE_RETURN_IF_ERROR(InitEngine());
  solve_options_ = ResolveSolveOptions(*program_, solve_options_);
  return Status::OK();
}

Status Instance::ApplyFact(const std::string& table, Row row, int sign) {
  if (crashed_) {
    return Status::RuntimeError("node " + std::to_string(id_) +
                                " is crashed; fact rejected");
  }
  COLOGNE_RETURN_IF_ERROR(engine_.Apply(table, row, sign));
  // Mark the table dirty for the next solve's advisory delta hint (sorted
  // insert keeps the hint deterministic regardless of fact order).
  auto it = std::lower_bound(touched_tables_.begin(), touched_tables_.end(),
                             table);
  if (it == touched_tables_.end() || *it != table) {
    touched_tables_.insert(it, table);
  }
  base_log_.push_back(BaseFact{table, std::move(row), sign});
  return Status::OK();
}

Status Instance::InsertFact(const std::string& table, Row row) {
  COLOGNE_RETURN_IF_ERROR(ApplyFact(table, std::move(row), +1));
  return engine_.Flush();
}

Status Instance::DeleteFact(const std::string& table, Row row) {
  COLOGNE_RETURN_IF_ERROR(ApplyFact(table, std::move(row), -1));
  return engine_.Flush();
}

Status Instance::Crash() {
  if (crashed_) return Status::OK();
  crashed_ = true;
  ++crash_count_;
  // Rebuild the engine empty-but-declared: in-flight deltas, derived state,
  // and the sender hook are gone, but readers (scenario drivers collecting
  // results) still find every table.
  engine_ = datalog::Engine(EngineSelf());
  COLOGNE_RETURN_IF_ERROR(InitEngine());
  owned_rows_.clear();
  return Status::OK();
}

Status Instance::Restart(bool retain_warm_start) {
  if (!crashed_) {
    return Status::RuntimeError("node " + std::to_string(id_) +
                                " is not crashed; cannot restart");
  }
  crashed_ = false;
  ++epoch_;
  if (!retain_warm_start) reset_warm_start();
  // Crash() already rebuilt a declared-empty engine; keep it and let the
  // caller re-install the sender before replaying the journal.
  return Status::OK();
}

Status Instance::ReplayBaseFacts() {
  if (crashed_) {
    return Status::RuntimeError("node " + std::to_string(id_) +
                                " is crashed; cannot replay");
  }
  // Chronological replay reproduces keyed-replacement order exactly; each
  // delta flushes so derived state (and re-shipped localized tuples) follow
  // the same order as the original execution.
  for (const BaseFact& fact : base_log_) {
    COLOGNE_RETURN_IF_ERROR(engine_.Apply(fact.table, fact.row, fact.sign));
    COLOGNE_RETURN_IF_ERROR(engine_.Flush());
  }
  return Status::OK();
}

Result<SolveOutput> Instance::Solve(const SolveRequest& request) {
  if (crashed_) {
    if (trace_ != nullptr) {
      trace_->Solve(id_, "down", false, 0, 0, 0, false);
    }
    if (metrics_ != nullptr) metrics_->Add("solve.down");
    return Status::RuntimeError("node " + std::to_string(id_) +
                                " is crashed; solver unavailable");
  }
  SolveOptions opts = solve_options_;
  // Provenance rides the same knob as the metrics stream: recording it
  // without a sink would pay the bookkeeping for nothing, and the `prov`
  // trace field must stay absent when OBS_METRICS is off.
  if (metrics_ != nullptr) opts.record_provenance = true;
  const int group_key_prefix =
      request.mode == SolveMode::kFull ? 0 : request.group_key_prefix;
  // kIncremental forces the delta path; any mode gets it when the program's
  // SOLVER_INCREMENTAL knob (or the caller's solve options) turned it on.
  if (request.mode == SolveMode::kIncremental) opts.incremental = true;
  IncrementalState* incr = opts.incremental ? &incr_state_ : nullptr;

  // Whole-solve reuse: when every table the model build reads is
  // content-unchanged since the previous incremental solve (and the solve
  // knobs are identical), the deterministic pipeline would reproduce the
  // cached output bit for bit — serve it and skip the model build, search,
  // and writeback entirely. This is the steady state of the periodic
  // re-solve loop: a fact delta perturbs one node's inputs, and every other
  // node's re-solve is a content-hash check.
  const uint64_t reuse_key = ReuseOptionsKey(opts, group_key_prefix);
  if (incr != nullptr && incr->reusable &&
      incr->reuse_options_key == reuse_key) {
    bool unchanged = true;
    for (const auto& [name, hash] : incr->input_hashes) {
      const datalog::Table* t = engine_.GetTable(name);
      if ((t == nullptr ? 0 : t->ContentHash()) != hash) {
        unchanged = false;
        break;
      }
    }
    if (unchanged) {
      SolveOutput out = incr->last_output;
      out.warm_started = true;
      out.incr_dirty = 0;
      out.incr_clean =
          static_cast<int>(out.model_groups > 0 ? out.model_groups : 1);
      out.incr_fallback = false;
      out.incr_reused = true;
      out.stats = solver::SolveStats{};  // no search ran
      ++solve_count_;
      // The advisory window closes: this solve consumed (and dismissed)
      // the journal's deltas by proving them outside the model's inputs.
      touched_tables_.clear();
      if (metrics_ != nullptr) {
        obs::MetricsRegistry& m = *metrics_;
        m.Add("solve.count");
        m.Add("solve.warm");
        m.Add("solve.incr");
        m.Add("solve.incr.reused");
        m.Add("solve.incr.dirty", 0);
        m.Observe("solve.nodes", 0);
      }
      if (trace_ != nullptr) {
        TraceRecorder::SolveIncr incr_trace;
        incr_trace.dirty = 0;
        incr_trace.clean = out.incr_clean;
        incr_trace.fallback = false;
        incr_trace.reused = true;
        trace_->Solve(id_, solver::SolveStatusName(out.status),
                      out.has_objective, out.objective, out.model_vars,
                      out.model_groups, out.warm_started,
                      out.provenance.empty() ? nullptr : &out.provenance,
                      &incr_trace);
      }
      return out;
    }
  }

  SolverBridge bridge(program_, &engine_);
  solver::ContextCache* ctx_cache = opts.cache ? &ctx_cache_ : nullptr;
  COLOGNE_ASSIGN_OR_RETURN(
      out, group_key_prefix > 0
               ? bridge.SolveBatched(opts, group_key_prefix, &warm_cache_,
                                     incr, ctx_cache)
               : bridge.Solve(opts, &warm_cache_, incr, ctx_cache));
  ++solve_count_;
  total_solve_ms_ += out.stats.wall_ms;
  if (metrics_ != nullptr) {
    obs::MetricsRegistry& m = *metrics_;
    m.Add("solve.count");
    m.Add("solve.nodes", out.stats.nodes);
    m.Add("solve.failures", out.stats.failures);
    m.Add("solve.propagations", out.stats.propagations);
    m.Add("solve.iterations", out.stats.iterations);
    m.Add("solve.restarts", out.stats.restarts);
    if (out.stats.lns_accepted > 0) {
      m.Add("lns.accepted", out.stats.lns_accepted);
    }
    // Only emitted when the knobs are on, so knob-off metric traces stay
    // byte-identical.
    if (out.stats.cache_hits > 0) m.Add("solve.cache.hits", out.stats.cache_hits);
    if (out.stats.steals > 0) m.Add("solve.steals", out.stats.steals);
    if (out.stats.wakes_filtered > 0) {
      m.Add("solve.wakes_filtered", out.stats.wakes_filtered);
    }
    if (out.stats.props_skipped_entailed > 0) {
      m.Add("solve.props_skipped_entailed", out.stats.props_skipped_entailed);
    }
    if (out.warm_started) m.Add("solve.warm");
    if (out.incr_dirty >= 0) {
      m.Add(out.incr_fallback ? "solve.incr.fallback" : "solve.incr");
      m.Add("solve.incr.dirty", static_cast<uint64_t>(out.incr_dirty));
    }
    for (const auto& [kind, count] : out.stats.propagations_by_kind) {
      m.Add("prop." + kind, count);
    }
    m.Observe("solve.nodes", static_cast<int64_t>(out.stats.nodes));
  }
  if (out.has_solution()) {
    // Batched solves flush per delta: several migVm rows share one
    // read-modify-write target (r3's curVm), and each must see the
    // previous row's effect (see Writeback).
    COLOGNE_RETURN_IF_ERROR(
        Writeback(out.tables, /*flush_per_delta=*/group_key_prefix > 0));
    // The journal's advisory dirty-table window closes with the solve that
    // consumed it.
    touched_tables_.clear();
    // Whole-solve reuse snapshot, taken after the writeback flush so that
    // "current hash == snapshot hash" means the engine already sits at this
    // solve's post-writeback fixed point. Var tables and derived solver
    // tables are part of the input set, so a crash/restart (which replays
    // base facts but not solver output) hashes differently and correctly
    // rejects reuse.
    if (incr != nullptr) {
      incr->input_hashes.clear();
      for (const std::string& name : SolverInputTables(*program_)) {
        const datalog::Table* t = engine_.GetTable(name);
        incr->input_hashes[name] = t == nullptr ? 0 : t->ContentHash();
      }
      incr->reuse_options_key = reuse_key;
      incr->last_output = out;
      incr->reusable = true;
    }
  }
  if (trace_ != nullptr) {
    TraceRecorder::SolveIncr incr_trace;
    if (out.incr_dirty >= 0) {
      incr_trace.dirty = out.incr_dirty;
      incr_trace.clean = out.incr_clean;
      incr_trace.fallback = out.incr_fallback;
    }
    trace_->Solve(id_, solver::SolveStatusName(out.status), out.has_objective,
                  out.objective, out.model_vars, out.model_groups,
                  out.warm_started,
                  out.provenance.empty() ? nullptr : &out.provenance,
                  out.incr_dirty >= 0 ? &incr_trace : nullptr);
  }
  return out;
}

Status Instance::Writeback(
    const std::map<std::string, std::vector<Row>>& tables,
    bool flush_per_delta) {
  // Normalize new rows per output table (sorted, deduplicated).
  std::map<std::string, std::vector<Row>> next;
  for (const std::string& name : program_->solver_output_tables) {
    auto it = tables.find(name);
    std::vector<Row> rows;
    if (it != tables.end()) rows = it->second;
    std::sort(rows.begin(), rows.end());
    rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
    next[name] = std::move(rows);
  }

  // Deletes first (rows we owned that are gone), then inserts. Insert-side
  // keyed displacement then handles value updates cleanly. Var tables are
  // decision records and only ever *upsert*: each solve covers the current
  // forall bindings, and decisions for bindings outside this solve (e.g.
  // links negotiated in earlier Follow-the-Sun rounds) must survive.
  for (const auto& [name, rows] : owned_rows_) {
    if (program_->var_tables.count(name)) continue;
    const std::vector<Row>& fresh = next.count(name) ? next[name]
                                                     : std::vector<Row>{};
    for (const Row& old : rows) {
      if (!std::binary_search(fresh.begin(), fresh.end(), old)) {
        COLOGNE_RETURN_IF_ERROR(engine_.Apply(name, old, -1));
      }
    }
  }
  for (const auto& [name, rows] : next) {
    auto owned_it = owned_rows_.find(name);
    const std::vector<Row>* old =
        owned_it == owned_rows_.end() ? nullptr : &owned_it->second;
    for (const Row& row : rows) {
      if (old == nullptr ||
          !std::binary_search(old->begin(), old->end(), row)) {
        COLOGNE_RETURN_IF_ERROR(engine_.Apply(name, row, +1));
        // Batched mode: run the fixpoint now so the next inserted row
        // observes this one's post-solve effects (sequential per-delta
        // semantics, matching what per-link solves produce one at a time).
        if (flush_per_delta) COLOGNE_RETURN_IF_ERROR(engine_.Flush());
      }
    }
  }
  owned_rows_ = std::move(next);
  return engine_.Flush();
}

}  // namespace cologne::runtime

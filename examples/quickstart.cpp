// Quickstart: declare a tiny load-balancing COP in Colog, feed it facts,
// invoke the solver, and read back the optimized placement.
//
//   build/examples/quickstart
#include <cstdio>

#include "colog/planner.h"
#include "runtime/instance.h"

using namespace cologne;

int main() {
  // A miniature ACloud: place VMs on hosts, minimizing the CPU-load
  // standard deviation, one host per VM. The SOLVER_* params pick the
  // search backend (bnb | lns), time budget (ms) and RNG seed in-language.
  const char* kProgram = R"(
    param SOLVER_BACKEND = "lns".
    param SOLVER_MAX_TIME = 1000.
    param SOLVER_SEED = 5.

    goal minimize C in hostStdevCpu(C).
    var assign(Vid,Hid,V) forall toAssign(Vid,Hid) domain [0,1].

    r1 toAssign(Vid,Hid) <- vm(Vid,Cpu), host(Hid).
    d1 hostCpu(Hid,SUM<C>) <- assign(Vid,Hid,V), vm(Vid,Cpu), C==V*Cpu.
    d2 hostStdevCpu(STDEV<C>) <- hostCpu(Hid,C).
    d3 assignCount(Vid,SUM<V>) <- assign(Vid,Hid,V).
    c1 assignCount(Vid,V) -> V==1.
  )";

  // 1. Compile: parse -> static analysis (solver tables, rule classes) ->
  //    execution plan.
  auto compiled = colog::CompileColog(kProgram);
  if (!compiled.ok()) {
    printf("compile error: %s\n", compiled.status().ToString().c_str());
    return 1;
  }
  colog::CompiledProgram program = std::move(compiled).value();
  printf("compiled: %zu regular, %zu solver-derivation, %zu constraint "
         "rules\n",
         program.counts.regular, program.counts.solver_derivation,
         program.counts.solver_constraint);

  // 2. Load facts into a Cologne instance (the Datalog engine evaluates the
  //    regular rules incrementally as facts arrive).
  runtime::Instance instance(0, &program);
  if (!instance.Init().ok()) return 1;
  struct {
    int id;
    int cpu;
  } vms[] = {{1, 40}, {2, 30}, {3, 20}, {4, 10}, {5, 25}, {6, 35}};
  for (auto [id, cpu] : vms) {
    (void)instance.InsertFact("vm", {Value::Int(id), Value::Int(cpu)});
  }
  for (int h : {100, 101}) {
    (void)instance.InsertFact("host", {Value::Int(h)});
  }

  // 3. invokeSolver: build the constraint network, run branch-and-bound,
  //    materialize the optimization output back into engine tables.
  auto out = instance.Solve();
  if (!out.ok()) {
    printf("solve error: %s\n", out.status().ToString().c_str());
    return 1;
  }
  printf("solve [%s]: %s, CPU stdev %.2f (%llu search nodes, "
         "%llu LNS iterations, %.1f ms)\n",
         solver::BackendName(out.value().backend),
         solver::SolveStatusName(out.value().status), out.value().objective,
         static_cast<unsigned long long>(out.value().stats.nodes),
         static_cast<unsigned long long>(out.value().stats.iterations),
         out.value().stats.wall_ms);

  // 4. Read the placement from the materialized assign table.
  for (const Row& row : instance.engine().GetTable("assign")->Rows()) {
    if (row[2].as_int() == 1) {
      printf("  vm %lld -> host %lld\n",
             static_cast<long long>(row[0].as_int()),
             static_cast<long long>(row[1].as_int()));
    }
  }
  return 0;
}

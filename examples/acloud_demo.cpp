// ACloud demo: the paper's Section 4.2 program end to end on a single data
// center, showing the migration-limit policy customization.
//
//   build/examples/acloud_demo
#include <cstdio>

#include "apps/programs.h"
#include "colog/planner.h"
#include "common/rng.h"
#include "runtime/instance.h"

using namespace cologne;
using namespace cologne::apps;

namespace {

void Report(runtime::Instance& inst, const runtime::SolveOutput& out) {
  printf("  status %s, CPU stdev %.2f, %llu nodes, %.0f ms\n",
         solver::SolveStatusName(out.status), out.objective,
         static_cast<unsigned long long>(out.stats.nodes), out.stats.wall_ms);
  int migrations = 0;
  const datalog::Table* assign = inst.engine().GetTable("assign");
  const datalog::Table* origin = inst.engine().GetTable("origin");
  for (const Row& row : assign->Rows()) {
    if (row[2].as_int() != 1) continue;
    for (const Row& o : origin->Rows()) {
      if (o[0] == row[0] && !(o[1] == row[1])) ++migrations;
    }
  }
  printf("  migrations from current placement: %d\n", migrations);
}

Status Load(runtime::Instance& inst, int vms, int hosts, uint64_t seed) {
  Rng rng(seed);
  for (int h = 0; h < hosts; ++h) {
    COLOGNE_RETURN_IF_ERROR(inst.InsertFact(
        "host", {Value::Int(h), Value::Int(0), Value::Int(0)}));
    COLOGNE_RETURN_IF_ERROR(
        inst.InsertFact("hostMemThres", {Value::Int(h), Value::Int(48)}));
  }
  for (int v = 0; v < vms; ++v) {
    COLOGNE_RETURN_IF_ERROR(inst.InsertFact(
        "vm", {Value::Int(v), Value::Int(rng.UniformInt(20, 90)),
               Value::Int(2)}));
    COLOGNE_RETURN_IF_ERROR(inst.InsertFact(
        "origin", {Value::Int(v), Value::Int(rng.UniformInt(0, hosts - 1))}));
  }
  return Status::OK();
}

}  // namespace

int main() {
  const int kVms = 24, kHosts = 4;

  printf("== ACloud (unconstrained migrations) ==\n");
  auto plain = colog::CompileColog(ACloudProgram(false));
  colog::CompiledProgram prog1 = std::move(plain).value();
  runtime::Instance inst1(0, &prog1);
  if (!inst1.Init().ok() || !Load(inst1, kVms, kHosts, 99).ok()) return 1;
  runtime::SolveOptions opts = inst1.solve_options();
  opts.time_limit_ms = 2000;
  inst1.set_solve_options(opts);
  auto out1 = inst1.Solve();
  if (!out1.ok()) {
    printf("%s\n", out1.status().ToString().c_str());
    return 1;
  }
  Report(inst1, out1.value());

  printf("\n== ACloud (M): at most 3 migrations (adds d5/d6/c3) ==\n");
  auto limited = colog::CompileColog(ACloudProgram(true, 3));
  colog::CompiledProgram prog2 = std::move(limited).value();
  runtime::Instance inst2(0, &prog2);
  if (!inst2.Init().ok() || !Load(inst2, kVms, kHosts, 99).ok()) return 1;
  inst2.set_solve_options(opts);
  auto out2 = inst2.Solve();
  if (!out2.ok()) {
    printf("%s\n", out2.status().ToString().c_str());
    return 1;
  }
  Report(inst2, out2.value());
  printf("\nThe policy change is three added Colog rules — no imperative "
         "code.\n");
  return 0;
}

// Follow-the-Sun demo: four data centers negotiate VM migrations pairwise
// over the simulated network (paper Section 4.3).
//
//   build/examples/follow_the_sun_demo
#include <cstdio>

#include "apps/followsun.h"

using namespace cologne;
using namespace cologne::apps;

int main() {
  FtsConfig cfg;
  cfg.num_dcs = 4;
  cfg.seed = 2024;

  FollowTheSunScenario scenario(cfg);
  auto r = scenario.Run();
  if (!r.ok()) {
    printf("failed: %s\n", r.status().ToString().c_str());
    return 1;
  }
  const FtsResult& res = r.value();

  printf("Follow-the-Sun across %d data centers\n", cfg.num_dcs);
  printf("  initial global cost : %.0f\n", res.initial_cost);
  printf("  final global cost   : %.0f  (%.1f%% reduction)\n", res.final_cost,
         res.reduction_pct);
  printf("  converged in %.0f s of virtual time (%d negotiation rounds)\n",
         res.converge_time_s, res.rounds);
  printf("  %d VM units migrated, per-link COP avg %.1f ms\n",
         res.total_vms_migrated, res.avg_link_solve_ms);
  printf("  per-node communication overhead: %.2f KB/s\n",
         res.avg_per_node_kBps);
  printf("\nCost trajectory (normalized):\n");
  for (const FtsSample& s : res.series) {
    int bars = static_cast<int>(s.normalized / 2);
    printf("  t=%5.0fs %6.1f%% ", s.t_s, s.normalized);
    for (int i = 0; i < bars; ++i) printf("#");
    printf("\n");
  }
  return 0;
}

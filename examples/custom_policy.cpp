// Policy customization walkthrough: the same deployment under three goal /
// constraint variations, each a few lines of Colog — the paper's central
// usability claim (Section 4.2: "it is easy to customize policies simply by
// modifying the goals, constraints, and adding additional derivation rules").
//
//   build/examples/custom_policy
#include <cstdio>

#include "colog/planner.h"
#include "common/rng.h"
#include "runtime/instance.h"

using namespace cologne;

namespace {

const char* kBase = R"(
  var assign(Vid,Hid,V) forall toAssign(Vid,Hid) domain [0,1].
  r1 toAssign(Vid,Hid) <- vm(Vid,Cpu), host(Hid).
  d1 hostCpu(Hid,SUM<C>) <- assign(Vid,Hid,V), vm(Vid,Cpu), C==V*Cpu.
  d3 assignCount(Vid,SUM<V>) <- assign(Vid,Hid,V).
  c1 assignCount(Vid,V) -> V==1.
)";

Result<double> RunPolicy(const std::string& extra_rules) {
  auto compiled = colog::CompileColog(std::string(kBase) + extra_rules);
  if (!compiled.ok()) return compiled.status();
  colog::CompiledProgram prog = std::move(compiled).value();
  runtime::Instance inst(0, &prog);
  COLOGNE_RETURN_IF_ERROR(inst.Init());
  Rng rng(17);
  for (int h = 0; h < 3; ++h) {
    COLOGNE_RETURN_IF_ERROR(inst.InsertFact("host", {Value::Int(h)}));
  }
  for (int v = 0; v < 12; ++v) {
    COLOGNE_RETURN_IF_ERROR(inst.InsertFact(
        "vm", {Value::Int(v), Value::Int(rng.UniformInt(10, 60))}));
  }
  runtime::SolveOptions o = inst.solve_options();
  o.time_limit_ms = 1000;
  inst.set_solve_options(o);
  COLOGNE_ASSIGN_OR_RETURN(out, inst.Solve());
  if (!out.has_solution()) return Status::SolverError("no solution");
  return out.objective;
}

}  // namespace

int main() {
  // Policy 1: balance load (minimize CPU stdev).
  auto balanced = RunPolicy(R"(
    goal minimize C in hostStdevCpu(C).
    d2 hostStdevCpu(STDEV<C>) <- hostCpu(Hid,C).
  )");
  printf("Policy 1 — balance load:        CPU stdev %.2f\n",
         balanced.value_or(-1));

  // Policy 2: consolidate (minimize the number of hosts in use), subject to
  // a per-host CPU cap.
  auto consolidated = RunPolicy(R"(
    goal minimize N in hostsUsed(N).
    d2 hostBusy(Hid,B) <- hostCpu(Hid,C), (B==1)==(C>=1).
    d4 hostsUsed(SUM<B>) <- hostBusy(Hid,B).
    c2 hostCpu(Hid,C) -> C<=220.
  )");
  printf("Policy 2 — consolidate:         hosts in use %.0f\n",
         consolidated.value_or(-1));

  // Policy 3: cap the hottest host (minimize the maximum load).
  auto capped = RunPolicy(R"(
    goal minimize M in hottest(M).
    d2 hottest(MAX<C>) <- hostCpu(Hid,C).
  )");
  printf("Policy 3 — minimize peak load:  hottest host %.0f%% CPU\n",
         capped.value_or(-1));

  printf("\nEach policy differs from the last by 2-3 Colog rules.\n");
  return 0;
}

// Wireless channel-selection demo: centralized vs distributed vs baseline on
// a small grid (paper Section 3.2 / Appendix A).
//
//   build/examples/wireless_demo
#include <cstdio>

#include "apps/wireless.h"

using namespace cologne;
using namespace cologne::apps;

int main() {
  WirelessConfig cfg;
  cfg.grid_w = 4;
  cfg.grid_h = 3;
  cfg.num_flows = 6;
  cfg.solver_time_ms = 2000;
  cfg.link_solve_ms = 150;

  WirelessScenario scenario(cfg);
  printf("Grid %dx%d, %zu links, %d channels, F_mindiff=%d\n", cfg.grid_w,
         cfg.grid_h, scenario.links().size(), cfg.num_channels,
         cfg.f_mindiff);

  for (WirelessProtocol p :
       {WirelessProtocol::k1Interface, WirelessProtocol::kIdenticalCh,
        WirelessProtocol::kCentralized, WirelessProtocol::kDistributed}) {
    auto r = scenario.AssignChannels(p);
    if (!r.ok()) {
      printf("%s failed: %s\n", WirelessProtocolName(p),
             r.status().ToString().c_str());
      return 1;
    }
    double tput = scenario.AggregateThroughput(r.value(), 6.0, false);
    printf("\n%-12s interference cost %4.0f, aggregate throughput %5.2f "
           "Mbps at 6 Mbps offered\n",
           WirelessProtocolName(p), r.value().interference_cost, tput);
    if (p == WirelessProtocol::kDistributed) {
      printf("  channels: ");
      for (const auto& [link, ch] : r.value().channel) {
        printf("(%d-%d):%d ", link.first, link.second, ch);
      }
      printf("\n");
    }
  }
  return 0;
}

#!/usr/bin/env python3
"""Check intra-repo markdown links.

Scans the given markdown files (and directories, recursively) for inline
links/images `[text](target)` and reference definitions `[id]: target`,
and verifies that every relative target resolves to an existing file or
directory. External schemes (http/https/mailto) and pure in-page anchors
are skipped; `path#anchor` targets are checked for the path part only.

Usage: scripts/check_markdown_links.py FILE_OR_DIR [...]
Exits 1 if any link is broken, listing file:line for each.
"""
import re
import sys
from pathlib import Path

# Inline [text](target) — also matches images; tolerates titles after a
# space. Reference definitions: [id]: target
INLINE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REFDEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)")
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def targets_in(line: str):
    yield from INLINE.findall(line)
    m = REFDEF.match(line)
    if m:
        yield m.group(1)


def check_file(md: Path) -> list[str]:
    errors = []
    in_fence = False
    for lineno, line in enumerate(
            md.read_text(encoding="utf-8").splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for target in targets_in(line):
            if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (md.parent / path).resolve()
            if not resolved.exists():
                errors.append(f"{md}:{lineno}: broken link -> {target}")
    return errors


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    files: list[Path] = []
    for arg in argv[1:]:
        p = Path(arg)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.md")))
        elif p.exists():
            files.append(p)
        else:
            print(f"error: no such file: {arg}", file=sys.stderr)
            return 2
    errors = []
    for md in files:
        errors.extend(check_file(md))
    for e in errors:
        print(e, file=sys.stderr)
    print(f"checked {len(files)} markdown file(s), "
          f"{len(errors)} broken link(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
